//! Experiment E1 — regenerates Fig. 1 of the paper: the comparison table of
//! compact routing schemes (table size, roundtrip, name independence,
//! stretch), with the paper's stated bounds next to the measured behaviour of
//! this reproduction.

use rtr_bench::{banner, instance, ExperimentConfig};
use rtr_core::analysis::SchemeEvaluation;
use rtr_core::{
    ExStretch, ExStretchParams, PolyParams, PolynomialStretch, Stretch6Params, StretchSix,
};
use rtr_graph::generators::Family;
use rtr_namedep::{ExactOracleScheme, LandmarkBallScheme, LandmarkParams, TreeCoverScheme};

fn main() {
    let cfg = ExperimentConfig::from_env(&[64, 128, 256], 1, 3000);

    banner("Fig. 1 (paper, stated bounds)");
    println!(
        "{:<22} {:>12} {:>10} {:>17} {:>22}",
        "scheme", "table size", "roundtrip", "name-independent", "stretch"
    );
    for (scheme, table, rt, ni, stretch) in [
        ("TZ'01 [39]", "~O(n^1/2)", "no", "no", "3"),
        ("RTZ'02 [35]", "~O(n^1/2)", "yes", "no", "3"),
        ("AGMNT'04 [2]", "~O(n^1/2)", "no", "yes", "3"),
        ("This paper (k=2)", "~O(n^1/2)", "yes", "yes", "6"),
        ("ACLRT'03 [4]", "~O(n^2/k)", "no", "yes", "1+(k-1)(2^{k/2}-2)"),
        ("AGM'04 [1]", "~O(n^2/k)", "no", "yes", "O(k)"),
        ("This paper (general k)", "~O(n^2/k)", "yes", "yes", "min{(2^{k/2}-1)(k+e), 8k^2+4k-4}"),
    ] {
        println!("{scheme:<22} {table:>12} {rt:>10} {ni:>17} {stretch:>22}");
    }

    banner("Measured rows (this reproduction, strongly connected G(n,p))");
    println!("{}", SchemeEvaluation::table_header());
    for &n in &cfg.sizes {
        let inst = instance(Family::Gnp, n, 42);
        let (g, m, names) = (&inst.graph, &inst.metric, &inst.names);
        let selection = cfg.selection(g.node_count(), 1);

        let s6_oracle =
            StretchSix::build(g, m, names, ExactOracleScheme::build(g), Stretch6Params::default());
        let mut eval = SchemeEvaluation::measure(g, m, names, &s6_oracle, selection).unwrap();
        eval.scheme = "s6/oracle".into();
        println!("{}", eval.table_row());

        let s6_compact = StretchSix::build(
            g,
            m,
            names,
            LandmarkBallScheme::build(g, m, LandmarkParams::default()),
            Stretch6Params::default(),
        );
        let mut eval = SchemeEvaluation::measure(g, m, names, &s6_compact, selection).unwrap();
        eval.scheme = "s6/landmark".into();
        println!("{}", eval.table_row());

        let ex_tree = ExStretch::build(
            g,
            m,
            names,
            TreeCoverScheme::build(g, m, 2),
            ExStretchParams::with_k(2),
        );
        let mut eval = SchemeEvaluation::measure(g, m, names, &ex_tree, selection).unwrap();
        eval.scheme = "ex-k2/cover".into();
        println!("{}", eval.table_row());

        let ex_oracle =
            ExStretch::build(g, m, names, ExactOracleScheme::build(g), ExStretchParams::with_k(3));
        let mut eval = SchemeEvaluation::measure(g, m, names, &ex_oracle, selection).unwrap();
        eval.scheme = "ex-k3/oracle".into();
        println!("{}", eval.table_row());

        let poly2 = PolynomialStretch::build(g, m, names, PolyParams::with_k(2));
        let mut eval = SchemeEvaluation::measure(g, m, names, &poly2, selection).unwrap();
        eval.scheme = "poly-k2".into();
        println!("{}", eval.table_row());

        let poly3 = PolynomialStretch::build(g, m, names, PolyParams::with_k(3));
        let mut eval = SchemeEvaluation::measure(g, m, names, &poly3, selection).unwrap();
        eval.scheme = "poly-k3".into();
        println!("{}", eval.table_row());

        println!(
            "{:<14} {:>6} {:>12}",
            "(reference)",
            n,
            format!("sqrt(n)={}", (n as f64).sqrt().ceil() as usize)
        );
        println!();
    }
}
