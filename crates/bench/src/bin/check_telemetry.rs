//! CI gate: cross-check a telemetry registry export against the baseline
//! artifact of the **same run**.
//!
//! Usage: `check_telemetry <telemetry.json> <baseline.json> [<telemetry2>
//! <baseline2> …]` — each pair must come from one bench invocation; any
//! failing pair fails the gate.  The second file's `"kind"` discriminator
//! selects the check: a `BENCH_serve.json` artifact (no kind, written by
//! `serve_throughput`) is cross-checked on the serving counters, a
//! `BENCH_chaos.json` artifact (`"kind": "chaos"`, written by `chaos_sweep`)
//! on the repair counters.
//!
//! The contract is exact equality wherever the sources are shared: the
//! telemetry counters are incremented by the very code paths that feed the
//! baseline numbers (`oracle.verify.rows_computed` by the verify oracle's
//! row computes, `serve.distinct_destinations` from the served streams,
//! `repair.rows_recomputed` / `repair.clusters_reanchored` by
//! `SparseRepairKit::repair` itself), so **any** disagreement means the
//! observability plane is lying about the serving or repair plane.  The
//! `repair.epoch_ns` histogram is gated on an exact observation count (one
//! per failure fraction) and a lower bound on its summed wall (the histogram
//! observes the same repair clock slightly after the artifact snapshots it,
//! so its sum can only be the larger of the two).  Exit code 1 on a
//! mismatch, 2 on an unreadable or malformed artifact.

use rtr_bench::baseline::{ChaosBaseline, JsonValue, ServeBaseline};

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("FAIL: cannot read {path}: {e}");
        std::process::exit(2);
    })
}

/// Extracts counter `name` from a registry export (0 when absent — a counter
/// never touched is never registered).
fn counter(telemetry: &JsonValue, name: &str) -> Result<u64, String> {
    match telemetry.field("counters")?.field_opt(name) {
        Some(v) => v.as_u64(),
        None => Ok(0),
    }
}

/// Extracts gauge `name`'s current value from a registry export (0 when
/// absent).
fn gauge(telemetry: &JsonValue, name: &str) -> Result<u64, String> {
    match telemetry.field("gauges")?.field_opt(name) {
        Some(v) => v.field("value")?.as_u64(),
        None => Ok(0),
    }
}

/// Extracts histogram `name`'s `(count, sum_ns)` from a registry export
/// (`(0, 0)` when absent).
fn histogram(telemetry: &JsonValue, name: &str) -> Result<(u64, u64), String> {
    match telemetry.field("histograms")?.field_opt(name) {
        Some(v) => Ok((v.field("count")?.as_u64()?, v.field("sum_ns")?.as_u64()?)),
        None => Ok((0, 0)),
    }
}

fn check_serve_pair(telemetry: &JsonValue, serve: &ServeBaseline) -> Result<Vec<String>, String> {
    let mut failures = Vec::new();
    let rows = counter(telemetry, "oracle.verify.rows_computed")?;
    if rows != serve.verify_rows_computed {
        failures.push(format!(
            "telemetry oracle.verify.rows_computed = {rows} disagrees with the gated \
             verify_rows_computed = {}",
            serve.verify_rows_computed
        ));
    }
    let distinct = gauge(telemetry, "serve.distinct_destinations")?;
    if distinct != serve.distinct_destinations {
        failures.push(format!(
            "telemetry serve.distinct_destinations = {distinct} disagrees with the gated \
             distinct_destinations = {}",
            serve.distinct_destinations
        ));
    }
    if failures.is_empty() {
        println!("telemetry ok: verify rows {rows}, distinct destinations {distinct}");
    }
    Ok(failures)
}

fn check_chaos_pair(telemetry: &JsonValue, chaos: &ChaosBaseline) -> Result<Vec<String>, String> {
    let mut failures = Vec::new();
    let want_rows: u64 = chaos.fractions.iter().map(|f| f.repair_rows).sum();
    let rows = counter(telemetry, "repair.rows_recomputed")?;
    if rows != want_rows {
        failures.push(format!(
            "telemetry repair.rows_recomputed = {rows} disagrees with the artifact's summed \
             repair_rows = {want_rows}"
        ));
    }
    let want_clusters: u64 = chaos.fractions.iter().map(|f| f.clusters_reanchored as u64).sum();
    let clusters = counter(telemetry, "repair.clusters_reanchored")?;
    if clusters != want_clusters {
        failures.push(format!(
            "telemetry repair.clusters_reanchored = {clusters} disagrees with the artifact's \
             summed clusters_reanchored = {want_clusters}"
        ));
    }
    let (count, sum_ns) = histogram(telemetry, "repair.epoch_ns")?;
    if count != chaos.fractions.len() as u64 {
        failures.push(format!(
            "telemetry repair.epoch_ns recorded {count} observations, expected one per failure \
             fraction = {}",
            chaos.fractions.len()
        ));
    }
    let floor_ns: u64 = chaos.fractions.iter().map(|f| f.repair_epoch_ns).sum();
    if sum_ns < floor_ns {
        failures.push(format!(
            "telemetry repair.epoch_ns sums to {sum_ns} ns, below the artifact's summed repair \
             walls {floor_ns} ns — the histogram observes the same clock later, so it can never \
             be smaller"
        ));
    }
    if failures.is_empty() {
        println!(
            "telemetry ok: repair rows {rows}, clusters re-anchored {clusters}, \
             {count} repair epochs over {sum_ns} ns"
        );
    }
    Ok(failures)
}

fn check_pair(telemetry_path: &str, baseline_path: &str) -> Result<Vec<String>, String> {
    let telemetry = JsonValue::parse(&read(telemetry_path))?;
    let baseline_text = read(baseline_path);
    let is_chaos = match JsonValue::parse(&baseline_text)?.field_opt("kind") {
        Some(kind) => kind.as_string()? == "chaos",
        None => false,
    };
    if is_chaos {
        check_chaos_pair(&telemetry, &ChaosBaseline::from_json(&baseline_text)?)
    } else {
        check_serve_pair(&telemetry, &ServeBaseline::from_json(&baseline_text)?)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 || args.len() % 2 != 1 {
        eprintln!(
            "usage: check_telemetry <telemetry.json> <baseline.json> \
             [<telemetry2.json> <baseline2.json> …]"
        );
        std::process::exit(2);
    }
    let mut failed = false;
    for pair in args[1..].chunks_exact(2) {
        match check_pair(&pair[0], &pair[1]) {
            Ok(failures) if failures.is_empty() => {
                println!("  ({} matches {})", pair[0], pair[1]);
            }
            Ok(failures) => {
                for f in &failures {
                    eprintln!("FAIL: {}: {f}", pair[0]);
                }
                failed = true;
            }
            Err(e) => {
                eprintln!("FAIL: cannot parse {} / {}: {e}", pair[0], pair[1]);
                std::process::exit(2);
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
