//! CI gate: cross-check a `BENCH_telemetry.json` registry export (written by
//! `serve_throughput` under `RTR_TELEMETRY_JSON`) against the
//! `BENCH_serve.json` artifact of the **same run**.
//!
//! Usage: `check_telemetry <telemetry.json> <serve.json> [<telemetry2>
//! <serve2> …]` — each pair must come from one `serve_throughput`
//! invocation; any failing pair fails the gate.
//!
//! The contract is exact equality, not tolerance: the telemetry counters are
//! incremented by the very code paths that feed the baseline numbers
//! (`oracle.verify.rows_computed` by the verify oracle's row computes,
//! `serve.distinct_destinations` from the served streams), so **any**
//! disagreement means the observability plane is lying about the serving
//! plane.  Exit code 1 on a mismatch, 2 on an unreadable or malformed
//! artifact.

use rtr_bench::baseline::{JsonValue, ServeBaseline};

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("FAIL: cannot read {path}: {e}");
        std::process::exit(2);
    })
}

/// Extracts counter `name` from a registry export (0 when absent — a counter
/// never touched is never registered).
fn counter(telemetry: &JsonValue, name: &str) -> Result<u64, String> {
    match telemetry.field("counters")?.field_opt(name) {
        Some(v) => v.as_u64(),
        None => Ok(0),
    }
}

/// Extracts gauge `name`'s current value from a registry export (0 when
/// absent).
fn gauge(telemetry: &JsonValue, name: &str) -> Result<u64, String> {
    match telemetry.field("gauges")?.field_opt(name) {
        Some(v) => v.field("value")?.as_u64(),
        None => Ok(0),
    }
}

fn check_pair(telemetry_path: &str, serve_path: &str) -> Result<Vec<String>, String> {
    let telemetry = JsonValue::parse(&read(telemetry_path))?;
    let serve = ServeBaseline::from_json(&read(serve_path))?;
    let mut failures = Vec::new();
    let rows = counter(&telemetry, "oracle.verify.rows_computed")?;
    if rows != serve.verify_rows_computed {
        failures.push(format!(
            "telemetry oracle.verify.rows_computed = {rows} disagrees with the gated \
             verify_rows_computed = {}",
            serve.verify_rows_computed
        ));
    }
    let distinct = gauge(&telemetry, "serve.distinct_destinations")?;
    if distinct != serve.distinct_destinations {
        failures.push(format!(
            "telemetry serve.distinct_destinations = {distinct} disagrees with the gated \
             distinct_destinations = {}",
            serve.distinct_destinations
        ));
    }
    if failures.is_empty() {
        println!(
            "telemetry ok: {telemetry_path} matches {serve_path} (verify rows {rows}, \
             distinct destinations {distinct})"
        );
    }
    Ok(failures)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 || args.len() % 2 != 1 {
        eprintln!(
            "usage: check_telemetry <telemetry.json> <serve.json> \
             [<telemetry2.json> <serve2.json> …]"
        );
        std::process::exit(2);
    }
    let mut failed = false;
    for pair in args[1..].chunks_exact(2) {
        match check_pair(&pair[0], &pair[1]) {
            Ok(failures) if failures.is_empty() => {}
            Ok(failures) => {
                for f in &failures {
                    eprintln!("FAIL: {}: {f}", pair[0]);
                }
                failed = true;
            }
            Err(e) => {
                eprintln!("FAIL: cannot parse {} / {}: {e}", pair[0], pair[1]);
                std::process::exit(2);
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
