//! Experiment E10 — Theorem 15: the lower bound. Builds the bidirected hard
//! instances, verifies the distance symmetry the reduction requires, and
//! places the implemented schemes' (table bits, measured stretch) points
//! against the `o(n) tables ⇒ stretch ≥ 2` frontier.

use rtr_bench::{banner, ExperimentConfig};
use rtr_core::analysis::{PairSelection, SchemeEvaluation};
use rtr_core::lowerbound::{
    hard_bidirected_instance, is_distance_symmetric, linear_table_reference_bits,
    roundtrip_stretch_from_oneway,
};
use rtr_core::naming::NamingAssignment;
use rtr_core::{PolyParams, PolynomialStretch, Stretch6Params, StretchSix};
use rtr_metric::DistanceMatrix;
use rtr_namedep::{LandmarkBallScheme, LandmarkParams};

fn main() {
    let cfg = ExperimentConfig::from_env(&[32, 64, 128], 1, 2500);

    banner("E10: Theorem 15 — reduction premises and the stretch >= 2 frontier");
    println!(
        "reduction arithmetic: one-way (3,3) -> roundtrip {}",
        roundtrip_stretch_from_oneway(3.0, 3.0)
    );
    println!(
        "{:<8} {:>10} {:>12} {:>14} {:>12} {:>12} {:>12}",
        "n", "symmetric", "scheme", "max-tbl-bits", "omega(n)ref", "avg-str", "max-str"
    );
    for &n in &cfg.sizes {
        let m_side = n / 2;
        let g = hard_bidirected_instance(m_side, 5);
        let dm = DistanceMatrix::build(&g);
        let symmetric = is_distance_symmetric(&dm);
        assert!(symmetric, "reduction premise violated");
        let names = NamingAssignment::random(g.node_count(), 3);
        let reference = linear_table_reference_bits(g.node_count());

        let s6 = StretchSix::build(
            &g,
            &dm,
            &names,
            LandmarkBallScheme::build(&g, &dm, LandmarkParams::default()),
            Stretch6Params::default(),
        );
        let selection = if g.node_count() * (g.node_count() - 1) <= cfg.pairs {
            PairSelection::AllPairs
        } else {
            PairSelection::Sampled { count: cfg.pairs, seed: 1 }
        };
        let eval = SchemeEvaluation::measure(&g, &dm, &names, &s6, selection).unwrap();
        println!(
            "{:<8} {:>10} {:>12} {:>14} {:>12} {:>12.3} {:>12.3}",
            g.node_count(),
            symmetric,
            "s6/landmark",
            eval.max_table_bits,
            reference,
            eval.avg_stretch,
            eval.max_stretch
        );

        let poly = PolynomialStretch::build(&g, &dm, &names, PolyParams::with_k(2));
        let eval = SchemeEvaluation::measure(&g, &dm, &names, &poly, selection).unwrap();
        println!(
            "{:<8} {:>10} {:>12} {:>14} {:>12} {:>12.3} {:>12.3}",
            g.node_count(),
            symmetric,
            "poly-k2",
            eval.max_table_bits,
            reference,
            eval.avg_stretch,
            eval.max_stretch
        );
    }
    println!(
        "\nTheorem 15 (not falsifiable by simulation, demonstrated by construction):\n\
         any TINN roundtrip scheme whose every table is o(n) bits has stretch >= 2 on\n\
         some bidirected instance; the rows above show our compact schemes operating\n\
         in exactly that sublinear-table regime, hence their worst-case stretch on\n\
         this family can approach but never undercut the frontier as n grows."
    );
}
