//! Experiment E6 — the combined tradeoff of the abstract / last row of
//! Fig. 1: `min{(2^{k/2} − 1)(k + ε), 8k² + 4k − 4}` for tables of size
//! Õ(ε⁻¹ n^{2/k}). The exponential branch wins for k ≤ 12, the polynomial one
//! beyond — this binary prints the analytic crossover and backs the small-k
//! region with measured stretch from both implemented schemes at equal table
//! budget (the exponential scheme instantiated with k/2 digits so both use
//! Õ(n^{2/k}) space).

use rtr_bench::{banner, instance, ExperimentConfig};
use rtr_core::analysis::SchemeEvaluation;
use rtr_core::{ExStretch, ExStretchParams, PolyParams, PolynomialStretch};
use rtr_graph::generators::Family;
use rtr_namedep::ExactOracleScheme;

fn main() {
    let cfg = ExperimentConfig::from_env(&[128], 1, 2000);
    let epsilon = 1.0f64;

    banner("E6: analytic crossover of the two tradeoff branches");
    println!("{:>4} {:>22} {:>16} {:>10}", "k", "(2^(k/2)-1)(k+eps)", "8k^2+4k-4", "winner");
    for k in 2..=16u32 {
        let expo = ((2f64).powf(k as f64 / 2.0) - 1.0) * (k as f64 + epsilon);
        let poly = (8 * k * k + 4 * k - 4) as f64;
        let winner = if expo <= poly { "exponential" } else { "polynomial" };
        println!("{k:>4} {expo:>22.1} {poly:>16} {winner:>10}");
    }
    println!("(the exponential branch wins for k <= 12, as stated in §4)");

    banner("E6b: measured stretch of both schemes at equal table budget (oracle substrate)");
    println!(
        "{:>6} {:>4} {:>16} {:>16} {:>14} {:>14}",
        "n", "k", "ex(k/2) max-str", "poly(k) max-str", "ex entries", "poly entries"
    );
    for &n in &cfg.sizes {
        let inst = instance(Family::Gnp, n, 31);
        let (g, m, names) = (&inst.graph, &inst.metric, &inst.names);
        for k in [4u32, 6, 8] {
            let ex = ExStretch::build(
                g,
                m,
                names,
                ExactOracleScheme::build(g),
                ExStretchParams::with_k(k / 2),
            );
            let poly = PolynomialStretch::build(g, m, names, PolyParams::with_k(k));
            let ex_eval =
                SchemeEvaluation::measure(g, m, names, &ex, cfg.selection(n, k as u64)).unwrap();
            let poly_eval =
                SchemeEvaluation::measure(g, m, names, &poly, cfg.selection(n, k as u64)).unwrap();
            let ex_entries = g.nodes().map(|v| ex.dictionary_stats(v).entries).max().unwrap();
            println!(
                "{:>6} {:>4} {:>16.3} {:>16.3} {:>14} {:>14}",
                n,
                k,
                ex_eval.max_stretch,
                poly_eval.max_stretch,
                ex_entries,
                poly_eval.max_table_entries
            );
        }
    }
}
