//! Latency accounting for engine runs.
//!
//! Workers accumulate into private [`WorkerStats`] (fixed-size hop histogram,
//! scalar counters) and the engine merges them after the pool joins — the hot
//! path touches no shared atomics.  Stretch accounting lives entirely in the
//! verification plane ([`crate::VerifyMode::Sampled`] for strided sampling,
//! [`crate::VerifyMode::Full`] for the whole stream); the summary itself
//! carries only throughput and hop-latency facts.

use rtr_sim::BriefRoundtrip;
use std::time::Duration;

/// Number of exact buckets in the hop histogram; roundtrips longer than this
/// land in the overflow bucket (index `HOP_BUCKETS`).
const HOP_BUCKETS: usize = 1024;

/// Per-worker accumulator; merged into a [`ServeSummary`] after the join.
#[derive(Debug)]
pub(crate) struct WorkerStats {
    pub queries: usize,
    pub total_hops: u64,
    pub total_weight: u128,
    pub max_header_bits: usize,
    /// `hop_histogram[h]`: roundtrips that took exactly `h` hops
    /// (`hop_histogram[HOP_BUCKETS]` collects the overflow).
    pub hop_histogram: Vec<u64>,
}

impl WorkerStats {
    pub(crate) fn new() -> Self {
        WorkerStats {
            queries: 0,
            total_hops: 0,
            total_weight: 0,
            max_header_bits: 0,
            hop_histogram: vec![0; HOP_BUCKETS + 1],
        }
    }

    /// Records one served roundtrip.
    pub(crate) fn record(&mut self, brief: &BriefRoundtrip) {
        let hops = brief.total_hops();
        self.queries += 1;
        self.total_hops += hops as u64;
        self.total_weight += u128::from(brief.total_weight());
        self.max_header_bits = self.max_header_bits.max(brief.max_header_bits());
        self.hop_histogram[hops.min(HOP_BUCKETS)] += 1;
    }

    pub(crate) fn merge(&mut self, other: WorkerStats) {
        self.queries += other.queries;
        self.total_hops += other.total_hops;
        self.total_weight += other.total_weight;
        self.max_header_bits = self.max_header_bits.max(other.max_header_bits);
        for (a, b) in self.hop_histogram.iter_mut().zip(&other.hop_histogram) {
            *a += b;
        }
    }
}

/// The aggregate outcome of one [`crate::Engine::serve`] run.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Requests served.
    pub queries: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock of the serving phase (excludes workload generation).
    pub elapsed: Duration,
    /// Total hops over all roundtrips.
    pub total_hops: u64,
    /// Total traversed weight over all roundtrips.
    pub total_weight: u128,
    /// Largest header observed across all requests, in bits.
    pub max_header_bits: usize,
    hop_histogram: Vec<u64>,
}

impl ServeSummary {
    pub(crate) fn from_stats(stats: WorkerStats, workers: usize, elapsed: Duration) -> Self {
        // Fold the merged per-worker counters into the telemetry registry —
        // once per serve run, after the join, so the hot path stays free of
        // shared writes.  The registry names mirror the summary fields.
        if rtr_telemetry::enabled() {
            rtr_telemetry::counter("engine.queries").add(stats.queries as u64);
            rtr_telemetry::counter("engine.hops").add(stats.total_hops);
            rtr_telemetry::gauge("engine.max_header_bits").set_max(stats.max_header_bits as u64);
        }
        ServeSummary {
            queries: stats.queries,
            workers,
            elapsed,
            total_hops: stats.total_hops,
            total_weight: stats.total_weight,
            max_header_bits: stats.max_header_bits,
            hop_histogram: stats.hop_histogram,
        }
    }

    /// Serving throughput in queries per second.
    pub fn queries_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.queries as f64 / secs
        } else {
            0.0
        }
    }

    /// Mean hops per roundtrip.
    pub fn avg_hops(&self) -> f64 {
        self.total_hops as f64 / self.queries.max(1) as f64
    }

    /// The `p`-quantile (`0 ≤ p ≤ 1`) of the roundtrip hop count, read from
    /// the exact histogram (the overflow bucket reports as its lower edge).
    pub fn hop_percentile(&self, p: f64) -> usize {
        if self.queries == 0 {
            return 0;
        }
        let rank = ((self.queries as f64 - 1.0) * p).round() as u64;
        let mut seen = 0u64;
        for (hops, &count) in self.hop_histogram.iter().enumerate() {
            seen += count;
            if seen > rank {
                return hops;
            }
        }
        HOP_BUCKETS
    }

    /// `(p50, p95, p99)` roundtrip hop latency.
    pub fn hop_latency(&self) -> (usize, usize, usize) {
        (self.hop_percentile(0.50), self.hop_percentile(0.95), self.hop_percentile(0.99))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::{Distance, NodeId};
    use rtr_sim::BriefTrace;

    fn brief(s: u32, t: u32, hops: usize, weight: Distance) -> BriefRoundtrip {
        let leg = |h, w, at| BriefTrace {
            hops: h,
            weight: w,
            max_header_bits: 64,
            delivered_at: NodeId(at),
        };
        BriefRoundtrip {
            source: NodeId(s),
            destination: NodeId(t),
            outbound: leg(hops / 2, weight / 2, t),
            inbound: leg(hops - hops / 2, weight - weight / 2, s),
        }
    }

    #[test]
    fn record_and_merge_accumulate() {
        let mut a = WorkerStats::new();
        let mut b = WorkerStats::new();
        a.record(&brief(0, 1, 4, 10));
        b.record(&brief(1, 2, 6, 14));
        a.merge(b);
        assert_eq!(a.queries, 2);
        assert_eq!(a.total_hops, 10);
        assert_eq!(a.total_weight, 24);
        assert_eq!(a.hop_histogram[4], 1);
        assert_eq!(a.hop_histogram[6], 1);
    }

    #[test]
    fn hop_percentiles_walk_the_histogram() {
        let mut w = WorkerStats::new();
        for _ in 0..90 {
            w.record(&brief(0, 1, 2, 4));
        }
        for _ in 0..10 {
            w.record(&brief(0, 1, 40, 80));
        }
        let s = ServeSummary::from_stats(w, 1, Duration::from_secs(1));
        assert_eq!(s.hop_percentile(0.5), 2);
        assert_eq!(s.hop_percentile(0.99), 40);
        assert_eq!(s.hop_latency(), (2, 40, 40));
        assert!((s.queries_per_sec() - 100.0).abs() < 1e-9);
        assert!((s.avg_hops() - 5.8).abs() < 1e-9);
    }

    #[test]
    fn overflow_bucket_clamps() {
        let mut w = WorkerStats::new();
        w.record(&brief(0, 1, 5000, 5000));
        let s = ServeSummary::from_stats(w, 1, Duration::from_millis(1));
        assert_eq!(s.hop_percentile(1.0), HOP_BUCKETS);
    }

    #[test]
    fn empty_summary_is_well_defined() {
        let s = ServeSummary::from_stats(WorkerStats::new(), 4, Duration::ZERO);
        assert_eq!(s.queries_per_sec(), 0.0);
        assert_eq!(s.hop_percentile(0.99), 0);
        assert_eq!(s.avg_hops(), 0.0);
    }
}
