//! Latency and stretch accounting for engine runs.
//!
//! Workers accumulate into private [`WorkerStats`] (fixed-size hop histogram,
//! scalar counters, a strided stretch sample) and the engine merges them
//! after the pool joins — the hot path touches no shared atomics.

use rtr_graph::{Distance, NodeId, INFINITY};
use rtr_metric::DistanceOracle;
use rtr_sim::BriefRoundtrip;
use std::time::Duration;

/// Number of exact buckets in the hop histogram; roundtrips longer than this
/// land in the overflow bucket (index `HOP_BUCKETS`).
const HOP_BUCKETS: usize = 1024;

/// One strided stretch sample: enough of a request's outcome to compute its
/// exact stretch later against a distance oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StretchSample {
    /// Source of the sampled request.
    pub source: NodeId,
    /// Destination of the sampled request.
    pub destination: NodeId,
    /// Measured roundtrip weight.
    pub weight: Distance,
}

/// Per-worker accumulator; merged into a [`ServeSummary`] after the join.
#[derive(Debug)]
pub(crate) struct WorkerStats {
    pub queries: usize,
    pub total_hops: u64,
    pub total_weight: u128,
    pub max_header_bits: usize,
    /// `hop_histogram[h]`: roundtrips that took exactly `h` hops
    /// (`hop_histogram[HOP_BUCKETS]` collects the overflow).
    pub hop_histogram: Vec<u64>,
    pub samples: Vec<StretchSample>,
}

impl WorkerStats {
    pub(crate) fn new() -> Self {
        WorkerStats {
            queries: 0,
            total_hops: 0,
            total_weight: 0,
            max_header_bits: 0,
            hop_histogram: vec![0; HOP_BUCKETS + 1],
            samples: Vec::new(),
        }
    }

    /// Records one served roundtrip; `sampled` marks the strided stretch
    /// sample (decided by global request index, so the sample set does not
    /// depend on worker count or scheduling).
    pub(crate) fn record(&mut self, brief: &BriefRoundtrip, sampled: bool) {
        let hops = brief.total_hops();
        self.queries += 1;
        self.total_hops += hops as u64;
        self.total_weight += u128::from(brief.total_weight());
        self.max_header_bits = self.max_header_bits.max(brief.max_header_bits());
        self.hop_histogram[hops.min(HOP_BUCKETS)] += 1;
        if sampled {
            self.samples.push(StretchSample {
                source: brief.source,
                destination: brief.destination,
                weight: brief.total_weight(),
            });
        }
    }

    pub(crate) fn merge(&mut self, other: WorkerStats) {
        self.queries += other.queries;
        self.total_hops += other.total_hops;
        self.total_weight += other.total_weight;
        self.max_header_bits = self.max_header_bits.max(other.max_header_bits);
        for (a, b) in self.hop_histogram.iter_mut().zip(&other.hop_histogram) {
            *a += b;
        }
        self.samples.extend(other.samples);
    }
}

/// The aggregate outcome of one [`crate::Engine::serve`] run.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Requests served.
    pub queries: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock of the serving phase (excludes workload generation and
    /// stretch post-processing).
    pub elapsed: Duration,
    /// Total hops over all roundtrips.
    pub total_hops: u64,
    /// Total traversed weight over all roundtrips.
    pub total_weight: u128,
    /// Largest header observed across all requests, in bits.
    pub max_header_bits: usize,
    hop_histogram: Vec<u64>,
    samples: Vec<StretchSample>,
}

impl ServeSummary {
    pub(crate) fn from_stats(stats: WorkerStats, workers: usize, elapsed: Duration) -> Self {
        let mut samples = stats.samples;
        // Workers finish in arbitrary order; sort for reproducible output.
        samples.sort_by_key(|s| (s.destination, s.source, s.weight));
        ServeSummary {
            queries: stats.queries,
            workers,
            elapsed,
            total_hops: stats.total_hops,
            total_weight: stats.total_weight,
            max_header_bits: stats.max_header_bits,
            hop_histogram: stats.hop_histogram,
            samples,
        }
    }

    /// Serving throughput in queries per second.
    pub fn queries_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.queries as f64 / secs
        } else {
            0.0
        }
    }

    /// Mean hops per roundtrip.
    pub fn avg_hops(&self) -> f64 {
        self.total_hops as f64 / self.queries.max(1) as f64
    }

    /// The `p`-quantile (`0 ≤ p ≤ 1`) of the roundtrip hop count, read from
    /// the exact histogram (the overflow bucket reports as its lower edge).
    pub fn hop_percentile(&self, p: f64) -> usize {
        if self.queries == 0 {
            return 0;
        }
        let rank = ((self.queries as f64 - 1.0) * p).round() as u64;
        let mut seen = 0u64;
        for (hops, &count) in self.hop_histogram.iter().enumerate() {
            seen += count;
            if seen > rank {
                return hops;
            }
        }
        HOP_BUCKETS
    }

    /// `(p50, p95, p99)` roundtrip hop latency.
    pub fn hop_latency(&self) -> (usize, usize, usize) {
        (self.hop_percentile(0.50), self.hop_percentile(0.95), self.hop_percentile(0.99))
    }

    /// The strided stretch samples collected during the run.
    pub fn samples(&self) -> &[StretchSample] {
        &self.samples
    }

    /// Exact stretch distribution of the strided sample, computed against
    /// `m`.
    ///
    /// Samples are grouped by destination and each group is answered from
    /// the destination's roundtrip row (`r(s, t) = r(t, s)`) through the
    /// same batched-row lookup the full-stream verification plane flushes
    /// its buckets with ([`rtr_metric::roundtrip_rows_batched`]), so a lazy
    /// oracle pays two Dijkstras per *distinct sampled destination* — cheap
    /// under skewed workloads — instead of two per sample.  Returns `None`
    /// when no samples were collected.
    pub fn stretch_summary<O: DistanceOracle + ?Sized>(&self, m: &O) -> Option<StretchSummary> {
        if self.samples.is_empty() {
            return None;
        }
        let mut stretches = Vec::with_capacity(self.samples.len());
        // `samples` is sorted by destination: dedup yields each distinct
        // destination once, in the order the grouped sweep will visit it.
        let mut dests: Vec<NodeId> = self.samples.iter().map(|s| s.destination).collect();
        dests.dedup();
        let mut at = 0usize;
        rtr_metric::roundtrip_rows_batched(m, &dests, |dst, row| {
            while at < self.samples.len() && self.samples[at].destination == dst {
                let s = &self.samples[at];
                let r = row[s.source.index()];
                assert!(r > 0 && r != INFINITY, "sampled pair unreachable");
                stretches.push(s.weight as f64 / r as f64);
                at += 1;
            }
        });
        debug_assert_eq!(at, self.samples.len(), "every sample answered from its row");
        stretches.sort_by(|a, b| a.partial_cmp(b).expect("stretch is never NaN"));
        let percentile = |p: f64| -> f64 {
            let idx = ((stretches.len() as f64 - 1.0) * p).round() as usize;
            stretches[idx]
        };
        Some(StretchSummary {
            samples: stretches.len(),
            avg: stretches.iter().sum::<f64>() / stretches.len() as f64,
            p50: percentile(0.50),
            p95: percentile(0.95),
            p99: percentile(0.99),
            max: *stretches.last().expect("nonempty"),
        })
    }
}

/// Stretch distribution of a [`ServeSummary`]'s strided sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StretchSummary {
    /// Number of sampled requests.
    pub samples: usize,
    /// Mean stretch.
    pub avg: f64,
    /// Median stretch.
    pub p50: f64,
    /// 95th-percentile stretch.
    pub p95: f64,
    /// 99th-percentile stretch.
    pub p99: f64,
    /// Worst sampled stretch.
    pub max: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_sim::BriefTrace;

    fn brief(s: u32, t: u32, hops: usize, weight: Distance) -> BriefRoundtrip {
        let leg = |h, w, at| BriefTrace {
            hops: h,
            weight: w,
            max_header_bits: 64,
            delivered_at: NodeId(at),
        };
        BriefRoundtrip {
            source: NodeId(s),
            destination: NodeId(t),
            outbound: leg(hops / 2, weight / 2, t),
            inbound: leg(hops - hops / 2, weight - weight / 2, s),
        }
    }

    #[test]
    fn record_and_merge_accumulate() {
        let mut a = WorkerStats::new();
        let mut b = WorkerStats::new();
        a.record(&brief(0, 1, 4, 10), true);
        b.record(&brief(1, 2, 6, 14), false);
        a.merge(b);
        assert_eq!(a.queries, 2);
        assert_eq!(a.total_hops, 10);
        assert_eq!(a.total_weight, 24);
        assert_eq!(a.samples.len(), 1);
        assert_eq!(a.hop_histogram[4], 1);
        assert_eq!(a.hop_histogram[6], 1);
    }

    #[test]
    fn hop_percentiles_walk_the_histogram() {
        let mut w = WorkerStats::new();
        for _ in 0..90 {
            w.record(&brief(0, 1, 2, 4), false);
        }
        for _ in 0..10 {
            w.record(&brief(0, 1, 40, 80), false);
        }
        let s = ServeSummary::from_stats(w, 1, Duration::from_secs(1));
        assert_eq!(s.hop_percentile(0.5), 2);
        assert_eq!(s.hop_percentile(0.99), 40);
        assert_eq!(s.hop_latency(), (2, 40, 40));
        assert!((s.queries_per_sec() - 100.0).abs() < 1e-9);
        assert!((s.avg_hops() - 5.8).abs() < 1e-9);
    }

    #[test]
    fn overflow_bucket_clamps() {
        let mut w = WorkerStats::new();
        w.record(&brief(0, 1, 5000, 5000), false);
        let s = ServeSummary::from_stats(w, 1, Duration::from_millis(1));
        assert_eq!(s.hop_percentile(1.0), HOP_BUCKETS);
    }

    #[test]
    fn empty_summary_is_well_defined() {
        let s = ServeSummary::from_stats(WorkerStats::new(), 4, Duration::ZERO);
        assert_eq!(s.queries_per_sec(), 0.0);
        assert_eq!(s.hop_percentile(0.99), 0);
        assert!(s.stretch_summary(&NoOracle).is_none());
    }

    /// Oracle stub for the empty-summary test (never queried).
    #[derive(Debug)]
    struct NoOracle;
    impl DistanceOracle for NoOracle {
        fn node_count(&self) -> usize {
            0
        }
        fn distance(&self, _: NodeId, _: NodeId) -> Distance {
            unreachable!()
        }
        fn row(&self, _: NodeId) -> Vec<Distance> {
            unreachable!()
        }
        fn rev_row(&self, _: NodeId) -> Vec<Distance> {
            unreachable!()
        }
    }

    #[test]
    fn stretch_summary_groups_by_destination() {
        use rtr_graph::generators::directed_ring;
        use rtr_metric::DistanceMatrix;
        let g = directed_ring(6, 1).unwrap();
        let m = DistanceMatrix::build(&g);
        let mut w = WorkerStats::new();
        for s in 1..4u32 {
            let r = m.roundtrip(NodeId(s), NodeId(0));
            w.record(&brief(s, 0, 6, r), true); // stretch exactly 1
            w.record(&brief(s, 0, 6, 2 * r), true); // stretch exactly 2
        }
        let summary = ServeSummary::from_stats(w, 2, Duration::from_millis(5));
        let st = summary.stretch_summary(&m).unwrap();
        assert_eq!(st.samples, 6);
        assert!((st.avg - 1.5).abs() < 1e-12);
        assert!((st.max - 2.0).abs() < 1e-12);
        assert!((st.p50 - 1.0).abs() < 1e-12 || (st.p50 - 2.0).abs() < 1e-12);
    }
}
