//! The worker pool: fans a request stream over threads serving one
//! [`FrozenPlane`].

use crate::plane::FrozenPlane;
use crate::stats::{ServeSummary, WorkerStats};
use crate::verify::{VerifiedServe, VerifyAccumulator, VerifyConfig, VerifyServeError};
use crate::workload::Request;
use rtr_metric::DistanceOracle;
use rtr_sim::{RoundtripReport, RoundtripRouting, SimError, Simulator};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// Engine tunables.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads (default: available parallelism).
    pub workers: usize,
    /// Requests handed to a worker per grab.  Batching amortises the single
    /// shared atomic the scheduler uses; the default of 256 makes that
    /// counter touched once per ~256 queries.
    pub chunk_size: usize,
    /// Stride of the stretch sample: request `i` is sampled iff
    /// `i % stretch_sample_stride == 0`.  Strided by *global* request index,
    /// so the sample set is identical for any worker count.
    pub stretch_sample_stride: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
            chunk_size: 256,
            stretch_sample_stride: 16,
        }
    }
}

impl EngineConfig {
    /// The default configuration with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig { workers, ..Default::default() }
    }
}

/// The concurrent route-serving engine.
///
/// Scheduling is batched work stealing: a single shared atomic counter hands
/// out chunks of the request slice; whichever worker finishes its chunk first
/// grabs the next, so skewed workloads (one hot destination making some
/// requests slower than others) cannot strand a worker idle.  All statistics
/// accumulate in per-worker buffers merged after the join — the serving loop
/// itself performs no synchronised writes beyond the chunk counter.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// An engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Serves every request against the plane, returning aggregate
    /// throughput/latency accounting.
    ///
    /// # Errors
    ///
    /// The first [`SimError`] any worker encounters (remaining workers stop
    /// at their next chunk boundary).  Correct schemes never fail.
    pub fn serve<S: RoundtripRouting + Send + Sync>(
        &self,
        plane: &FrozenPlane<S>,
        requests: &[Request],
    ) -> Result<ServeSummary, SimError> {
        let workers = self.config.workers.max(1);
        let stride = self.config.stretch_sample_stride.max(1);
        let started = Instant::now();
        let per_worker = self.run_pool(
            plane,
            requests,
            WorkerStats::new,
            |sim, plane, index, req, stats: &mut WorkerStats| {
                let brief =
                    sim.roundtrip_brief(plane.scheme(), req.src, req.dst, plane.name_of(req.dst))?;
                stats.record(&brief, index % stride == 0);
                Ok(())
            },
            |_| Ok(()),
        )?;
        let mut merged = WorkerStats::new();
        for stats in per_worker {
            merged.merge(stats);
        }
        Ok(ServeSummary::from_stats(merged, workers, started.elapsed()))
    }

    /// Serves every request **and verifies it against the exact metric**:
    /// the oracle-backed serving regime.
    ///
    /// Depending on [`VerifyConfig::mode`], none, a strided sample, or the
    /// **full stream** of requests is checked: each worker batches its
    /// checked trips into bounded per-destination buckets and flushes every
    /// bucket through one shared roundtrip row of `oracle`
    /// ([`rtr_metric::roundtrip_rows_batched`]), comparing each trip's
    /// measured cost against the exact roundtrip distance in integer
    /// arithmetic.  The returned [`VerifiedServe`] carries the ordinary
    /// serving summary (its strided stretch sample is empty — verification
    /// supersedes it), the deterministic [`crate::VerifiedReport`]
    /// (bit-identical for any worker count), and the schedule-dependent
    /// flush/row cost counters.
    ///
    /// # Errors
    ///
    /// [`VerifyServeError::Sim`] on the first simulator error any worker
    /// encounters, and — in strict mode with a configured bound —
    /// [`VerifyServeError::BoundExceeded`] when any checked trip exceeds the
    /// scheme's stretch ceiling.
    pub fn serve_verified<S, O>(
        &self,
        plane: &FrozenPlane<S>,
        requests: &[Request],
        oracle: &O,
        verify: &VerifyConfig,
    ) -> Result<VerifiedServe, VerifyServeError>
    where
        S: RoundtripRouting + Send + Sync,
        O: DistanceOracle + ?Sized,
    {
        let workers = self.config.workers.max(1);
        let mode = verify.mode;
        let started = Instant::now();
        let per_worker = self.run_pool(
            plane,
            requests,
            || (WorkerStats::new(), VerifyAccumulator::new(verify)),
            |sim, plane, index, req, (stats, acc): &mut (WorkerStats, VerifyAccumulator)| {
                let brief =
                    sim.roundtrip_brief(plane.scheme(), req.src, req.dst, plane.name_of(req.dst))?;
                stats.record(&brief, false);
                if mode.checks(index) {
                    acc.push(oracle, index, req, brief.total_weight());
                }
                Ok(())
            },
            |(_, acc)| {
                acc.flush(oracle);
                Ok(())
            },
        )?;
        let mut merged = WorkerStats::new();
        let mut accs = Vec::with_capacity(per_worker.len());
        for (stats, acc) in per_worker {
            merged.merge(stats);
            accs.push(acc);
        }
        let queries = merged.queries;
        let summary = ServeSummary::from_stats(merged, workers, started.elapsed());
        let (report, cost) = VerifyAccumulator::merge_all(accs, queries);
        let outcome = VerifiedServe { summary, report, cost };
        if verify.strict && !outcome.report.is_clean() {
            return Err(VerifyServeError::BoundExceeded(Box::new(outcome)));
        }
        Ok(outcome)
    }

    /// Runs every request and returns the full [`RoundtripReport`]s **in
    /// request order**, exactly as a sequential
    /// [`rtr_sim::Simulator::roundtrip`] loop would produce them.
    ///
    /// This is the reference mode the determinism property tests compare
    /// against the sequential simulator; serving-path callers should prefer
    /// [`serve`](Self::serve), which does not allocate per-request traces.
    ///
    /// # Errors
    ///
    /// The first [`SimError`] any worker encounters.
    pub fn collect<S: RoundtripRouting + Send + Sync>(
        &self,
        plane: &FrozenPlane<S>,
        requests: &[Request],
    ) -> Result<Vec<RoundtripReport>, SimError> {
        let per_worker = self.run_pool(
            plane,
            requests,
            Vec::new,
            |sim, plane, index, req, out: &mut Vec<(usize, RoundtripReport)>| {
                let report =
                    sim.roundtrip(plane.scheme(), req.src, req.dst, plane.name_of(req.dst))?;
                out.push((index, report));
                Ok(())
            },
            |_| Ok(()),
        )?;
        let mut indexed: Vec<(usize, RoundtripReport)> = per_worker.into_iter().flatten().collect();
        indexed.sort_by_key(|&(i, _)| i);
        Ok(indexed.into_iter().map(|(_, r)| r).collect())
    }

    /// The single work-stealing pool behind [`serve`](Self::serve),
    /// [`serve_verified`](Self::serve_verified) and
    /// [`collect`](Self::collect): a shared atomic chunk counter hands out
    /// request batches, `handle` processes one request into the worker's
    /// private accumulator (created by `init`), a failing worker trips the
    /// abort flag so the others stop at their next chunk boundary, `finish`
    /// runs once per worker after its last chunk (the verification plane
    /// drains its remaining destination buckets there), and the per-worker
    /// accumulators are returned after the join (worker order).  Worker
    /// panics propagate with their original payload.
    fn run_pool<S, A>(
        &self,
        plane: &FrozenPlane<S>,
        requests: &[Request],
        init: impl Fn() -> A + Sync,
        handle: impl Fn(&Simulator<'_>, &FrozenPlane<S>, usize, &Request, &mut A) -> Result<(), SimError>
            + Sync,
        finish: impl Fn(&mut A) -> Result<(), SimError> + Sync,
    ) -> Result<Vec<A>, SimError>
    where
        S: RoundtripRouting + Send + Sync,
        A: Send,
    {
        let workers = self.config.workers.max(1);
        let chunk = self.config.chunk_size.max(1);
        let next = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let result = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let (next, failed, init, handle, finish) =
                        (&next, &failed, &init, &handle, &finish);
                    scope.spawn(move |_| -> Result<A, SimError> {
                        let sim = plane.simulator();
                        let mut acc = init();
                        while !failed.load(Ordering::Relaxed) {
                            let lo = next.fetch_add(chunk, Ordering::Relaxed);
                            if lo >= requests.len() {
                                break;
                            }
                            let hi = (lo + chunk).min(requests.len());
                            for (i, req) in requests[lo..hi].iter().enumerate() {
                                if let Err(e) = handle(&sim, plane, lo + i, req, &mut acc) {
                                    failed.store(true, Ordering::Relaxed);
                                    return Err(e);
                                }
                            }
                        }
                        // Skip the finish hook after an abort: the pool is
                        // about to return the error and discard every
                        // accumulator, so a final verification flush would
                        // pay its oracle rows for nothing.
                        if !failed.load(Ordering::Relaxed) {
                            if let Err(e) = finish(&mut acc) {
                                failed.store(true, Ordering::Relaxed);
                                return Err(e);
                            }
                        }
                        Ok(acc)
                    })
                })
                .collect();
            let mut accs = Vec::with_capacity(workers);
            let mut first_err = None;
            for h in handles {
                match h.join().expect("engine worker panicked") {
                    Ok(acc) => accs.push(acc),
                    Err(e) => first_err = first_err.or(Some(e)),
                }
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok(accs),
            }
        });
        match result {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::tests::ring_plane;
    use crate::workload::Workload;

    #[test]
    fn serve_counts_every_request_for_any_worker_count() {
        let plane = ring_plane(12);
        let requests = Workload::Uniform.generate(12, 1000, 3);
        let mut summaries = Vec::new();
        for workers in [1usize, 2, 5, 16] {
            let engine = Engine::new(EngineConfig::with_workers(workers));
            let summary = engine.serve(&plane, &requests).unwrap();
            assert_eq!(summary.queries, 1000);
            assert_eq!(summary.workers, workers);
            summaries.push(summary);
        }
        // Aggregates are schedule-independent.
        for s in &summaries[1..] {
            assert_eq!(s.total_hops, summaries[0].total_hops);
            assert_eq!(s.total_weight, summaries[0].total_weight);
            assert_eq!(s.max_header_bits, summaries[0].max_header_bits);
            assert_eq!(s.hop_latency(), summaries[0].hop_latency());
            assert_eq!(s.samples(), summaries[0].samples());
        }
    }

    #[test]
    fn collect_returns_reports_in_request_order() {
        let plane = ring_plane(9);
        let requests = Workload::Mix.generate(9, 500, 7);
        let sequential: Vec<_> = {
            let sim = plane.simulator();
            requests
                .iter()
                .map(|r| sim.roundtrip(plane.scheme(), r.src, r.dst, plane.name_of(r.dst)).unwrap())
                .collect()
        };
        for workers in [1usize, 3, 8] {
            let engine = Engine::new(EngineConfig::with_workers(workers));
            let collected = engine.collect(&plane, &requests).unwrap();
            assert_eq!(collected, sequential, "workers = {workers}");
        }
    }

    #[test]
    fn empty_request_stream_is_fine() {
        let plane = ring_plane(4);
        let engine = Engine::default();
        let summary = engine.serve(&plane, &[]).unwrap();
        assert_eq!(summary.queries, 0);
        assert!(engine.collect(&plane, &[]).unwrap().is_empty());
    }

    #[test]
    fn tiny_chunks_and_excess_workers_still_cover_everything() {
        let plane = ring_plane(5);
        let requests = Workload::Bidirectional.generate(5, 37, 1);
        let config = EngineConfig { workers: 13, chunk_size: 1, stretch_sample_stride: 1 };
        let summary = Engine::new(config).serve(&plane, &requests).unwrap();
        assert_eq!(summary.queries, 37);
        assert_eq!(summary.samples().len(), 37);
    }
}
