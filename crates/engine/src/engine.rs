//! The worker pool: fans a request stream over threads serving one
//! [`FrozenPlane`].

use crate::plane::FrozenPlane;
use crate::shard::{ShardServeStats, ShardedPlane, ShardedServe, VerifiedShardedServe};
use crate::stats::{ServeSummary, WorkerStats};
use crate::verify::{VerifiedServe, VerifyAccumulator, VerifyConfig, VerifyServeError};
use crate::workload::Request;
use crossbeam::channel::{self, TrySendError};
use rtr_metric::DistanceOracle;
use rtr_sim::{RoundtripReport, RoundtripRouting, SimError, Simulator};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// Engine tunables.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads (default: available parallelism).
    pub workers: usize,
    /// Requests handed to a worker per grab.  Batching amortises the single
    /// shared atomic the scheduler uses; the default of 256 makes that
    /// counter touched once per ~256 queries.
    pub chunk_size: usize,
    /// Capacity of each worker's handoff queue in the sharded engine
    /// ([`Engine::serve_sharded`]): a sender finding the owner's queue this
    /// full serves its own backlog instead of enqueueing — the backpressure
    /// that bounds cross-shard buffering at `handoff_capacity` requests per
    /// worker.
    pub handoff_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
            chunk_size: 256,
            handoff_capacity: 1024,
        }
    }
}

impl EngineConfig {
    /// The default configuration with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig { workers, ..Default::default() }
    }
}

/// The concurrent route-serving engine.
///
/// Scheduling is batched work stealing: a single shared atomic counter hands
/// out chunks of the request slice; whichever worker finishes its chunk first
/// grabs the next, so skewed workloads (one hot destination making some
/// requests slower than others) cannot strand a worker idle.  All statistics
/// accumulate in per-worker buffers merged after the join — the serving loop
/// itself performs no synchronised writes beyond the chunk counter.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// An engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Serves every request against the plane, returning aggregate
    /// throughput/latency accounting.
    ///
    /// # Errors
    ///
    /// The first [`SimError`] any worker encounters (remaining workers stop
    /// at their next chunk boundary).  Correct schemes never fail.
    pub fn serve<S: RoundtripRouting + Send + Sync>(
        &self,
        plane: &FrozenPlane<S>,
        requests: &[Request],
    ) -> Result<ServeSummary, SimError> {
        let workers = self.config.workers.max(1);
        let started = Instant::now();
        let per_worker = self.run_pool(
            plane,
            requests,
            WorkerStats::new,
            |sim, plane, _index, req, stats: &mut WorkerStats| {
                let brief =
                    sim.roundtrip_brief(plane.scheme(), req.src, req.dst, plane.name_of(req.dst))?;
                stats.record(&brief);
                Ok(())
            },
            |_| Ok(()),
        )?;
        let mut merged = WorkerStats::new();
        for stats in per_worker {
            merged.merge(stats);
        }
        Ok(ServeSummary::from_stats(merged, workers, started.elapsed()))
    }

    /// Serves every request **and verifies it against the exact metric**:
    /// the oracle-backed serving regime.
    ///
    /// Depending on [`VerifyConfig::mode`], none, a strided sample, or the
    /// **full stream** of requests is checked: each worker batches its
    /// checked trips into bounded per-destination buckets and flushes every
    /// bucket through one shared roundtrip row of `oracle`
    /// ([`rtr_metric::roundtrip_rows_batched`]), comparing each trip's
    /// measured cost against the exact roundtrip distance in integer
    /// arithmetic.  The returned [`VerifiedServe`] carries the ordinary
    /// serving summary, the deterministic [`crate::VerifiedReport`]
    /// (bit-identical for any worker count), and the schedule-dependent
    /// flush/row cost counters.
    ///
    /// # Errors
    ///
    /// [`VerifyServeError::Sim`] on the first simulator error any worker
    /// encounters, and — in strict mode with a configured bound —
    /// [`VerifyServeError::BoundExceeded`] when any checked trip exceeds the
    /// scheme's stretch ceiling.
    pub fn serve_verified<S, O>(
        &self,
        plane: &FrozenPlane<S>,
        requests: &[Request],
        oracle: &O,
        verify: &VerifyConfig,
    ) -> Result<VerifiedServe, VerifyServeError>
    where
        S: RoundtripRouting + Send + Sync,
        O: DistanceOracle + ?Sized,
    {
        let workers = self.config.workers.max(1);
        let mode = verify.mode;
        let started = Instant::now();
        let per_worker = self.run_pool(
            plane,
            requests,
            || (WorkerStats::new(), VerifyAccumulator::new(verify)),
            |sim, plane, index, req, (stats, acc): &mut (WorkerStats, VerifyAccumulator)| {
                let brief =
                    sim.roundtrip_brief(plane.scheme(), req.src, req.dst, plane.name_of(req.dst))?;
                stats.record(&brief);
                if mode.checks(index) {
                    acc.push(oracle, index, req, brief.total_weight());
                }
                Ok(())
            },
            |(_, acc)| {
                acc.flush(oracle);
                Ok(())
            },
        )?;
        let mut merged = WorkerStats::new();
        let mut accs = Vec::with_capacity(per_worker.len());
        for (stats, acc) in per_worker {
            merged.merge(stats);
            accs.push(acc);
        }
        let queries = merged.queries;
        let summary = ServeSummary::from_stats(merged, workers, started.elapsed());
        let (report, cost) = VerifyAccumulator::merge_all(accs, queries);
        let outcome = VerifiedServe { summary, report, cost };
        if verify.strict && !outcome.report.is_clean() {
            return Err(VerifyServeError::BoundExceeded(Box::new(outcome)));
        }
        Ok(outcome)
    }

    /// Serves every request over a [`ShardedPlane`]: shard `s` is owned by
    /// worker `s % workers`, workers pull request chunks from the shared
    /// counter, serve the requests whose destination they own inline, and
    /// hand everything else to the owner through that worker's bounded
    /// handoff channel (capacity [`EngineConfig::handoff_capacity`]; a
    /// sender finding the queue full serves its own backlog instead of
    /// blocking, which is what makes the handoff graph deadlock-free).
    ///
    /// The merged summary is identical to the unsharded
    /// [`serve`](Self::serve) for any shard × worker count; per-shard query
    /// counts (deterministic) and handoff counts (schedule-dependent) ride
    /// along in [`ShardedServe::shards`].
    ///
    /// # Errors
    ///
    /// The first [`SimError`] any worker encounters.
    pub fn serve_sharded<S: RoundtripRouting + Send + Sync>(
        &self,
        plane: &ShardedPlane<S>,
        requests: &[Request],
    ) -> Result<ShardedServe, SimError> {
        let workers = self.config.workers.max(1);
        let started = Instant::now();
        let per_shard = self.run_sharded_pool(
            plane,
            requests,
            |_shard| WorkerStats::new(),
            |sim, plane, _index, req, stats: &mut WorkerStats| {
                let brief =
                    sim.roundtrip_brief(plane.scheme(), req.src, req.dst, plane.name_of(req.dst))?;
                stats.record(&brief);
                Ok(())
            },
            |_| Ok(()),
        )?;
        let mut merged = WorkerStats::new();
        let mut shards = Vec::with_capacity(per_shard.len());
        for (shard, handoffs, stats) in per_shard {
            shards.push(ShardServeStats { shard, queries: stats.queries as u64, handoffs });
            merged.merge(stats);
        }
        shards.sort_by_key(|s| s.shard);
        rtr_telemetry::counter("engine.handoffs").add(shards.iter().map(|s| s.handoffs).sum());
        Ok(ShardedServe {
            summary: ServeSummary::from_stats(merged, workers, started.elapsed()),
            shards,
        })
    }

    /// [`serve_sharded`](Self::serve_sharded) with the verification plane:
    /// checked trips buffer in **per-shard** destination buckets, so no
    /// destination row is ever fetched by two workers — total verify rows
    /// stay `≤ 2 · distinct(stream destinations)` regardless of worker
    /// count.  Each worker drains all its shards' remaining buckets through
    /// one [`rtr_metric::roundtrip_rows_sharded`] sweep after the stream
    /// ends.
    ///
    /// The [`crate::VerifiedReport`] is bit-identical to the unsharded
    /// [`serve_verified`](Self::serve_verified) and to the sequential
    /// [`crate::verify_sequential`] replay for any shard × worker count
    /// (asserted by the conformance suite): trip→shard assignment is a pure
    /// function of the destination, per-shard buckets hold
    /// destination-disjoint trip sets, and the merge is commutative.
    ///
    /// ```
    /// use rtr_core::naming::NamingAssignment;
    /// use rtr_core::{Stretch6Params, StretchSix};
    /// use rtr_engine::{Engine, EngineConfig, FrozenPlane, ShardMap, ShardedPlane};
    /// use rtr_engine::{StretchBound, VerifyConfig, Workload};
    /// use rtr_graph::generators::strongly_connected_gnp;
    /// use rtr_metric::DistanceMatrix;
    /// use rtr_namedep::ExactOracleScheme;
    /// use std::sync::Arc;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = Arc::new(strongly_connected_gnp(32, 0.15, 5)?);
    /// let m = DistanceMatrix::build(&g);
    /// let names = NamingAssignment::random(g.node_count(), 1);
    /// let scheme =
    ///     StretchSix::build(&g, &m, &names, ExactOracleScheme::build(&g), Stretch6Params::default());
    /// let plane = FrozenPlane::freeze(Arc::clone(&g), scheme, Arc::new(names.to_names()));
    /// let requests = Workload::Mix.generate(g.node_count(), 1_000, 3);
    /// let engine = Engine::new(EngineConfig::with_workers(2));
    /// let config = VerifyConfig::full().with_bound(StretchBound::at_most(6));
    ///
    /// // The report is bit-identical for any shard count (and to the
    /// // unsharded engine) — only the per-shard accounting differs.
    /// let two = ShardedPlane::new(plane.clone(), ShardMap::hashed(32, 2, 9));
    /// let five = ShardedPlane::new(plane, ShardMap::hashed(32, 5, 9));
    /// let a = engine.serve_verified_sharded(&two, &requests, &m, &config)?;
    /// let b = engine.serve_verified_sharded(&five, &requests, &m, &config)?;
    /// assert_eq!(a.report, b.report);
    /// assert_eq!(a.report.checked, 1_000);
    /// assert_eq!(b.shards.len(), 5);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// As [`serve_verified`](Self::serve_verified):
    /// [`VerifyServeError::Sim`] on the first simulator error, and in strict
    /// mode [`VerifyServeError::BoundExceeded`] on a violated stretch bound.
    pub fn serve_verified_sharded<S, O>(
        &self,
        plane: &ShardedPlane<S>,
        requests: &[Request],
        oracle: &O,
        verify: &VerifyConfig,
    ) -> Result<VerifiedShardedServe, VerifyServeError>
    where
        S: RoundtripRouting + Send + Sync,
        O: DistanceOracle + ?Sized,
    {
        let workers = self.config.workers.max(1);
        let mode = verify.mode;
        let started = Instant::now();
        let per_shard = self.run_sharded_pool(
            plane,
            requests,
            |_shard| (WorkerStats::new(), VerifyAccumulator::new(verify)),
            |sim, plane, index, req, (stats, acc): &mut (WorkerStats, VerifyAccumulator)| {
                let brief =
                    sim.roundtrip_brief(plane.scheme(), req.src, req.dst, plane.name_of(req.dst))?;
                stats.record(&brief);
                if mode.checks(index) {
                    acc.push(oracle, index, req, brief.total_weight());
                }
                Ok(())
            },
            |owned| {
                let mut parts: Vec<&mut VerifyAccumulator> =
                    owned.iter_mut().map(|(_, _, (_, acc))| acc).collect();
                VerifyAccumulator::flush_sharded(&mut parts, oracle);
                Ok(())
            },
        )?;
        let mut merged = WorkerStats::new();
        let mut shards = Vec::with_capacity(per_shard.len());
        let mut accs = Vec::with_capacity(per_shard.len());
        for (shard, handoffs, (stats, acc)) in per_shard {
            shards.push(ShardServeStats { shard, queries: stats.queries as u64, handoffs });
            merged.merge(stats);
            accs.push(acc);
        }
        shards.sort_by_key(|s| s.shard);
        rtr_telemetry::counter("engine.handoffs").add(shards.iter().map(|s| s.handoffs).sum());
        let queries = merged.queries;
        let summary = ServeSummary::from_stats(merged, workers, started.elapsed());
        let (report, cost) = VerifyAccumulator::merge_all(accs, queries);
        let outcome = VerifiedShardedServe { summary, report, cost, shards };
        if verify.strict && !outcome.report.is_clean() {
            return Err(VerifyServeError::ShardedBoundExceeded(Box::new(outcome)));
        }
        Ok(outcome)
    }

    /// Runs every request and returns the full [`RoundtripReport`]s **in
    /// request order**, exactly as a sequential
    /// [`rtr_sim::Simulator::roundtrip`] loop would produce them.
    ///
    /// This is the reference mode the determinism property tests compare
    /// against the sequential simulator; serving-path callers should prefer
    /// [`serve`](Self::serve), which does not allocate per-request traces.
    ///
    /// # Errors
    ///
    /// The first [`SimError`] any worker encounters.
    pub fn collect<S: RoundtripRouting + Send + Sync>(
        &self,
        plane: &FrozenPlane<S>,
        requests: &[Request],
    ) -> Result<Vec<RoundtripReport>, SimError> {
        let per_worker = self.run_pool(
            plane,
            requests,
            Vec::new,
            |sim, plane, index, req, out: &mut Vec<(usize, RoundtripReport)>| {
                let report =
                    sim.roundtrip(plane.scheme(), req.src, req.dst, plane.name_of(req.dst))?;
                out.push((index, report));
                Ok(())
            },
            |_| Ok(()),
        )?;
        let mut indexed: Vec<(usize, RoundtripReport)> = per_worker.into_iter().flatten().collect();
        indexed.sort_by_key(|&(i, _)| i);
        Ok(indexed.into_iter().map(|(_, r)| r).collect())
    }

    /// The single work-stealing pool behind [`serve`](Self::serve),
    /// [`serve_verified`](Self::serve_verified) and
    /// [`collect`](Self::collect): a shared atomic chunk counter hands out
    /// request batches, `handle` processes one request into the worker's
    /// private accumulator (created by `init`), a failing worker trips the
    /// abort flag so the others stop at their next chunk boundary, `finish`
    /// runs once per worker after its last chunk (the verification plane
    /// drains its remaining destination buckets there), and the per-worker
    /// accumulators are returned after the join (worker order).  Worker
    /// panics propagate with their original payload.
    fn run_pool<S, A>(
        &self,
        plane: &FrozenPlane<S>,
        requests: &[Request],
        init: impl Fn() -> A + Sync,
        handle: impl Fn(&Simulator<'_>, &FrozenPlane<S>, usize, &Request, &mut A) -> Result<(), SimError>
            + Sync,
        finish: impl Fn(&mut A) -> Result<(), SimError> + Sync,
    ) -> Result<Vec<A>, SimError>
    where
        S: RoundtripRouting + Send + Sync,
        A: Send,
    {
        let workers = self.config.workers.max(1);
        let chunk = self.config.chunk_size.max(1);
        let next = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let result = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let (next, failed, init, handle, finish) =
                        (&next, &failed, &init, &handle, &finish);
                    scope.spawn(move |_| -> Result<A, SimError> {
                        let sim = plane.simulator();
                        let mut acc = init();
                        while !failed.load(Ordering::Relaxed) {
                            let lo = next.fetch_add(chunk, Ordering::Relaxed);
                            if lo >= requests.len() {
                                break;
                            }
                            let hi = (lo + chunk).min(requests.len());
                            for (i, req) in requests[lo..hi].iter().enumerate() {
                                if let Err(e) = handle(&sim, plane, lo + i, req, &mut acc) {
                                    failed.store(true, Ordering::Relaxed);
                                    return Err(e);
                                }
                            }
                        }
                        // Skip the finish hook after an abort: the pool is
                        // about to return the error and discard every
                        // accumulator, so a final verification flush would
                        // pay its oracle rows for nothing.
                        if !failed.load(Ordering::Relaxed) {
                            if let Err(e) = finish(&mut acc) {
                                failed.store(true, Ordering::Relaxed);
                                return Err(e);
                            }
                        }
                        Ok(acc)
                    })
                })
                .collect();
            let mut accs = Vec::with_capacity(workers);
            let mut first_err = None;
            for h in handles {
                match h.join().expect("engine worker panicked") {
                    Ok(acc) => accs.push(acc),
                    Err(e) => first_err = first_err.or(Some(e)),
                }
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok(accs),
            }
        });
        match result {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// The shard-owning pool behind [`serve_sharded`](Self::serve_sharded)
    /// and [`serve_verified_sharded`](Self::serve_verified_sharded).
    ///
    /// Worker `w` owns shards `{s | s % workers == w}` and holds one
    /// accumulator per owned shard (`init(shard)`).  Every worker ingests
    /// chunks from the shared counter; a request whose destination shard it
    /// owns is handled inline, everything else is `try_send`-handed to the
    /// owner's bounded channel.  On a full queue the sender drains its *own*
    /// channel before retrying — every blocked sender makes progress on the
    /// work only it can do, so the handoff graph cannot deadlock.  After the
    /// counter runs dry a worker drops its senders and block-drains its
    /// channel until every other worker has done the same, then runs
    /// `finish` over its owned accumulators (the verified path drains all
    /// its shards' buckets there in one sweep).
    ///
    /// Returns every `(shard, handoffs, accumulator)` triple, unsorted.  A
    /// failing worker trips the abort flag; in-flight handoffs are then
    /// dropped, every accumulator is discarded, and the first error is
    /// returned (worker panics propagate with their payload).
    ///
    /// `pub(crate)` so the streaming session ([`crate::VerifiedStream`]) can
    /// drive the same pool batch by batch.
    pub(crate) fn run_sharded_pool<S, A>(
        &self,
        plane: &ShardedPlane<S>,
        requests: &[Request],
        init: impl Fn(usize) -> A + Sync,
        handle: impl Fn(&Simulator<'_>, &FrozenPlane<S>, usize, &Request, &mut A) -> Result<(), SimError>
            + Sync,
        finish: impl Fn(&mut [(usize, u64, A)]) -> Result<(), SimError> + Sync,
    ) -> Result<Vec<(usize, u64, A)>, SimError>
    where
        S: RoundtripRouting + Send + Sync,
        A: Send,
    {
        let workers = self.config.workers.max(1);
        let chunk = self.config.chunk_size.max(1);
        let capacity = self.config.handoff_capacity.max(1);
        let shards = plane.map().shard_count();
        let next = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let mut txs = Vec::with_capacity(workers);
        let mut rxs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel::bounded::<(usize, Request)>(capacity);
            txs.push(tx);
            rxs.push(rx);
        }
        let result = crossbeam::scope(|scope| {
            let handles: Vec<_> = rxs
                .into_iter()
                .enumerate()
                .map(|(w, rx)| {
                    let txs = txs.clone();
                    let (next, failed, init, handle) = (&next, &failed, &init, &handle);
                    let finish = &finish;
                    scope.spawn(move |_| -> Result<Vec<(usize, u64, A)>, SimError> {
                        let sim = plane.plane().simulator();
                        let map = plane.map();
                        // Telemetry accumulates in worker-local scalars and
                        // publishes once after the drain — the hot path pays
                        // one branch per iteration when the sink is off, and
                        // one channel-lock `len()` sample per chunk when on.
                        let telemetry_on = rtr_telemetry::enabled();
                        let mut stall_ns: u64 = 0;
                        let mut queue_hw: usize = 0;
                        let mut accs: Vec<(usize, u64, A)> =
                            (w..shards).step_by(workers).map(|s| (s, 0u64, init(s))).collect();
                        // Handles one request this worker owns; `accs[s /
                        // workers]` is shard s's slot because owned shards
                        // ascend in steps of `workers` from `w`.
                        let serve_one = |index: usize,
                                         req: &Request,
                                         accs: &mut [(usize, u64, A)],
                                         handoff: bool|
                         -> Result<(), SimError> {
                            let s = map.shard_of(req.dst);
                            let slot = &mut accs[s / workers];
                            debug_assert_eq!(slot.0, s, "request routed to a foreign worker");
                            if handoff {
                                slot.1 += 1;
                            }
                            let r = handle(&sim, plane.plane(), index, req, &mut slot.2);
                            if r.is_err() {
                                failed.store(true, Ordering::Relaxed);
                            }
                            r
                        };
                        let mut aborted = false;
                        'ingest: loop {
                            if failed.load(Ordering::Relaxed) {
                                aborted = true;
                                break;
                            }
                            // Drain our backlog before grabbing more stream,
                            // so handoff queues turn over even when the
                            // stream is long.
                            if telemetry_on {
                                queue_hw = queue_hw.max(rx.len());
                            }
                            while let Ok((i, req)) = rx.try_recv() {
                                serve_one(i, &req, &mut accs, true)?;
                            }
                            let lo = next.fetch_add(chunk, Ordering::Relaxed);
                            if lo >= requests.len() {
                                break;
                            }
                            let hi = (lo + chunk).min(requests.len());
                            for (off, req) in requests[lo..hi].iter().enumerate() {
                                let index = lo + off;
                                let owner = map.shard_of(req.dst) % workers;
                                if owner == w {
                                    serve_one(index, req, &mut accs, false)?;
                                    continue;
                                }
                                let mut msg = (index, *req);
                                let mut stall_started: Option<Instant> = None;
                                loop {
                                    if failed.load(Ordering::Relaxed) {
                                        aborted = true;
                                        break 'ingest;
                                    }
                                    match txs[owner].try_send(msg) {
                                        Ok(()) => {
                                            if let Some(at) = stall_started {
                                                stall_ns += at.elapsed().as_nanos() as u64;
                                            }
                                            break;
                                        }
                                        Err(TrySendError::Full(m)) => {
                                            msg = m;
                                            if telemetry_on && stall_started.is_none() {
                                                stall_started = Some(Instant::now());
                                            }
                                            // Backpressure: serve our own
                                            // backlog while the owner's
                                            // queue is full.
                                            let mut progressed = false;
                                            while let Ok((j, q)) = rx.try_recv() {
                                                progressed = true;
                                                serve_one(j, &q, &mut accs, true)?;
                                            }
                                            if !progressed {
                                                std::thread::yield_now();
                                            }
                                        }
                                        Err(TrySendError::Disconnected(_)) => {
                                            // The owner returned early —
                                            // only possible on abort.
                                            aborted = true;
                                            break 'ingest;
                                        }
                                    }
                                }
                            }
                        }
                        // No more stream input from us: release our senders
                        // so owners' blocking drains can terminate.
                        drop(txs);
                        if !aborted {
                            loop {
                                if failed.load(Ordering::Relaxed) {
                                    aborted = true;
                                    break;
                                }
                                match rx.recv() {
                                    Ok((i, req)) => serve_one(i, &req, &mut accs, true)?,
                                    Err(_) => break,
                                }
                            }
                        }
                        if telemetry_on {
                            rtr_telemetry::counter("engine.handoff.stall_ns").add(stall_ns);
                            rtr_telemetry::gauge("engine.shard.queue_depth_hw")
                                .set_max(queue_hw as u64);
                        }
                        if !aborted && !failed.load(Ordering::Relaxed) {
                            if let Err(e) = finish(&mut accs) {
                                failed.store(true, Ordering::Relaxed);
                                return Err(e);
                            }
                        }
                        Ok(accs)
                    })
                })
                .collect();
            // The workers hold their own sender clones; release the
            // originals so sender counts reach zero when the workers finish.
            drop(txs);
            let mut accs = Vec::with_capacity(shards);
            let mut first_err = None;
            for h in handles {
                match h.join().expect("engine worker panicked") {
                    Ok(worker_accs) => accs.extend(worker_accs),
                    Err(e) => first_err = first_err.or(Some(e)),
                }
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok(accs),
            }
        });
        match result {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::tests::ring_plane;
    use crate::workload::Workload;

    #[test]
    fn serve_counts_every_request_for_any_worker_count() {
        let plane = ring_plane(12);
        let requests = Workload::Uniform.generate(12, 1000, 3);
        let mut summaries = Vec::new();
        for workers in [1usize, 2, 5, 16] {
            let engine = Engine::new(EngineConfig::with_workers(workers));
            let summary = engine.serve(&plane, &requests).unwrap();
            assert_eq!(summary.queries, 1000);
            assert_eq!(summary.workers, workers);
            summaries.push(summary);
        }
        // Aggregates are schedule-independent.
        for s in &summaries[1..] {
            assert_eq!(s.total_hops, summaries[0].total_hops);
            assert_eq!(s.total_weight, summaries[0].total_weight);
            assert_eq!(s.max_header_bits, summaries[0].max_header_bits);
            assert_eq!(s.hop_latency(), summaries[0].hop_latency());
        }
    }

    #[test]
    fn sharded_serve_matches_unsharded_aggregates_and_counts_shard_queries() {
        let plane = ring_plane(12);
        let requests = Workload::Mix.generate(12, 800, 13);
        let baseline = Engine::new(EngineConfig::with_workers(2)).serve(&plane, &requests).unwrap();
        for shards in [1usize, 3, 5] {
            for workers in [1usize, 2, 7] {
                let engine = Engine::new(EngineConfig::with_workers(workers));
                let sharded = ShardedPlane::new(plane.clone(), crate::ShardMap::range(12, shards));
                let outcome = engine.serve_sharded(&sharded, &requests).unwrap();
                assert_eq!(outcome.summary.queries, 800);
                assert_eq!(outcome.summary.total_hops, baseline.total_hops);
                assert_eq!(outcome.summary.total_weight, baseline.total_weight);
                assert_eq!(outcome.summary.hop_latency(), baseline.hop_latency());
                assert_eq!(outcome.shards.len(), shards);
                assert_eq!(outcome.shards.iter().map(|s| s.queries).sum::<u64>(), 800);
                // Per-shard query counts are a pure function of the stream.
                let map = crate::ShardMap::range(12, shards);
                for s in &outcome.shards {
                    let expected =
                        requests.iter().filter(|r| map.shard_of(r.dst) == s.shard).count() as u64;
                    assert_eq!(s.queries, expected, "shard {} workers {workers}", s.shard);
                }
                if workers == 1 {
                    assert!(outcome.shards.iter().all(|s| s.handoffs == 0));
                }
            }
        }
    }

    #[test]
    fn tiny_handoff_capacity_exercises_backpressure_without_losing_requests() {
        let plane = ring_plane(10);
        let requests = Workload::Hotspot.generate(10, 600, 21);
        let config = EngineConfig { workers: 4, chunk_size: 8, handoff_capacity: 1 };
        let sharded = ShardedPlane::new(plane, crate::ShardMap::hashed(10, 4, 5));
        let outcome = Engine::new(config).serve_sharded(&sharded, &requests).unwrap();
        assert_eq!(outcome.summary.queries, 600);
        assert_eq!(outcome.shards.iter().map(|s| s.queries).sum::<u64>(), 600);
    }

    #[test]
    fn collect_returns_reports_in_request_order() {
        let plane = ring_plane(9);
        let requests = Workload::Mix.generate(9, 500, 7);
        let sequential: Vec<_> = {
            let sim = plane.simulator();
            requests
                .iter()
                .map(|r| sim.roundtrip(plane.scheme(), r.src, r.dst, plane.name_of(r.dst)).unwrap())
                .collect()
        };
        for workers in [1usize, 3, 8] {
            let engine = Engine::new(EngineConfig::with_workers(workers));
            let collected = engine.collect(&plane, &requests).unwrap();
            assert_eq!(collected, sequential, "workers = {workers}");
        }
    }

    #[test]
    fn empty_request_stream_is_fine() {
        let plane = ring_plane(4);
        let engine = Engine::default();
        let summary = engine.serve(&plane, &[]).unwrap();
        assert_eq!(summary.queries, 0);
        assert!(engine.collect(&plane, &[]).unwrap().is_empty());
    }

    #[test]
    fn tiny_chunks_and_excess_workers_still_cover_everything() {
        let plane = ring_plane(5);
        let requests = Workload::Bidirectional.generate(5, 37, 1);
        let config = EngineConfig { workers: 13, chunk_size: 1, ..Default::default() };
        let summary = Engine::new(config).serve(&plane, &requests).unwrap();
        assert_eq!(summary.queries, 37);
    }
}
