//! [`FrozenPlane`]: a read-only, shard-friendly snapshot of a built scheme.

use rtr_dictionary::NodeName;
use rtr_graph::{DiGraph, NodeId};
use rtr_sim::{RoundtripRouting, Simulator, SimulatorConfig};
use std::sync::Arc;

/// A frozen serving plane: one built [`RoundtripRouting`] scheme, the graph
/// it routes on, and the TINN name of every node, all behind `Arc` snapshots.
///
/// Everything inside is immutable after construction, so a plane can be
/// handed to any number of worker threads (or cloned into shards — cloning
/// copies three `Arc`s, never the tables) and served without locks: the
/// scheme's forwarding function takes `&self`, the graph's port resolution
/// takes `&self`, and the names are a plain slice.  Per-query state lives
/// entirely in the packet header owned by the serving worker.
#[derive(Debug)]
pub struct FrozenPlane<S> {
    graph: Arc<DiGraph>,
    scheme: Arc<S>,
    names: Arc<Vec<NodeName>>,
    config: SimulatorConfig,
}

impl<S> Clone for FrozenPlane<S> {
    fn clone(&self) -> Self {
        FrozenPlane {
            graph: Arc::clone(&self.graph),
            scheme: Arc::clone(&self.scheme),
            names: Arc::clone(&self.names),
            config: self.config.clone(),
        }
    }
}

impl<S: RoundtripRouting> FrozenPlane<S> {
    /// Freezes `scheme` over `graph` with the given per-node TINN names
    /// (`names[v.index()]` is the name of `v`;
    /// `rtr_core::naming::NamingAssignment::to_names` produces this vector).
    ///
    /// # Panics
    ///
    /// Panics if `names` does not assign exactly one name per node.
    pub fn freeze(graph: Arc<DiGraph>, scheme: S, names: Arc<Vec<NodeName>>) -> Self {
        assert_eq!(names.len(), graph.node_count(), "one TINN name per node required");
        let config = SimulatorConfig::for_nodes(graph.node_count());
        FrozenPlane { graph, scheme: Arc::new(scheme), names, config }
    }

    /// Replaces the simulator configuration used by serving workers (hop
    /// budget, failed links).
    #[must_use]
    pub fn with_config(mut self, config: SimulatorConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the plane's graph with a mutated snapshot, keeping the
    /// frozen scheme and names — the chaos plane's **degraded serving**
    /// entry point: the pre-fault scheme keeps serving over the faulted
    /// graph, and every route that tries to cross a removed link surfaces as
    /// a routing error the tolerant epoch serve
    /// ([`crate::Engine::serve_epoch_sharded`]) counts per pair.
    ///
    /// # Panics
    ///
    /// Panics if the node count changed — faults mutate links and weights,
    /// never the node space.
    #[must_use]
    pub fn with_graph(mut self, graph: Arc<DiGraph>) -> Self {
        assert_eq!(
            graph.node_count(),
            self.graph.node_count(),
            "a degraded plane must keep the node space"
        );
        self.graph = graph;
        self
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The frozen scheme.
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// The scheme's reported name.
    pub fn scheme_name(&self) -> &'static str {
        self.scheme.scheme_name()
    }

    /// Number of nodes of the plane.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The TINN name of node `v`.
    pub fn name_of(&self, v: NodeId) -> NodeName {
        self.names[v.index()]
    }

    /// A simulator over this plane's graph and configuration.  Workers create
    /// one each; the simulator itself only borrows the graph.
    pub fn simulator(&self) -> Simulator<'_> {
        Simulator::with_config(&self.graph, self.config.clone())
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use rtr_graph::generators::directed_ring;
    use rtr_sim::{ForwardAction, HeaderBits, RoutingError, TableStats};

    /// Minimal ring scheme used across the engine's unit tests.
    #[derive(Debug)]
    pub(crate) struct RingScheme {
        ports: Vec<rtr_graph::Port>,
        n: usize,
    }

    #[derive(Debug, Clone)]
    pub(crate) struct RingHeader {
        remaining: usize,
        origin: NodeId,
        target_index: usize,
    }

    impl HeaderBits for RingHeader {
        fn bits(&self) -> usize {
            64
        }
    }

    impl RingScheme {
        pub(crate) fn new(g: &DiGraph) -> Self {
            let ports = g.nodes().map(|v| g.out_edges(v)[0].port).collect();
            RingScheme { ports, n: g.node_count() }
        }
    }

    impl RoundtripRouting for RingScheme {
        type Header = RingHeader;

        fn scheme_name(&self) -> &'static str {
            "test-ring"
        }

        fn new_packet(&self, src: NodeId, dst: NodeName) -> Result<RingHeader, RoutingError> {
            let target_index = dst.index();
            let remaining = (target_index + self.n - src.index()) % self.n;
            Ok(RingHeader { remaining, origin: src, target_index })
        }

        fn make_return(&self, _at: NodeId, h: &RingHeader) -> Result<RingHeader, RoutingError> {
            let remaining = (h.origin.index() + self.n - h.target_index) % self.n;
            Ok(RingHeader { remaining, ..h.clone() })
        }

        fn forward(&self, at: NodeId, h: &mut RingHeader) -> Result<ForwardAction, RoutingError> {
            if h.remaining == 0 {
                Ok(ForwardAction::Deliver)
            } else {
                h.remaining -= 1;
                Ok(ForwardAction::Forward(self.ports[at.index()]))
            }
        }

        fn table_stats(&self, _v: NodeId) -> TableStats {
            TableStats { entries: 1, bits: 32 }
        }
    }

    pub(crate) fn ring_plane(n: usize) -> FrozenPlane<RingScheme> {
        let g = Arc::new(directed_ring(n, 1).unwrap());
        let scheme = RingScheme::new(&g);
        let names = Arc::new((0..n as u32).map(NodeName).collect::<Vec<_>>());
        FrozenPlane::freeze(g, scheme, names)
    }

    #[test]
    fn freeze_and_clone_share_tables() {
        let plane = ring_plane(8);
        let shard = plane.clone();
        assert_eq!(plane.node_count(), 8);
        assert_eq!(shard.name_of(NodeId(3)), NodeName(3));
        assert!(std::ptr::eq(plane.graph(), shard.graph()));
        assert!(std::ptr::eq(plane.scheme(), shard.scheme()));
    }

    #[test]
    fn simulator_serves_roundtrips() {
        let plane = ring_plane(6);
        let sim = plane.simulator();
        let brief =
            sim.roundtrip_brief(plane.scheme(), NodeId(1), NodeId(4), plane.name_of(NodeId(4)));
        let brief = brief.unwrap();
        assert_eq!(brief.outbound.delivered_at, NodeId(4));
        assert_eq!(brief.inbound.delivered_at, NodeId(1));
        assert_eq!(brief.total_hops(), 6);
    }

    #[test]
    #[should_panic(expected = "one TINN name per node")]
    fn freeze_rejects_name_count_mismatch() {
        let g = Arc::new(directed_ring(5, 1).unwrap());
        let scheme = RingScheme::new(&g);
        FrozenPlane::freeze(g, scheme, Arc::new(vec![NodeName(0)]));
    }
}
