//! Composable, seeded request generators for the serving plane.
//!
//! Every generator is **deterministic given its seed** (built on the in-tree
//! SplitMix64 `rand` shim), so an engine run — and the property tests that
//! compare the multi-threaded engine against the sequential simulator — can
//! be reproduced bit for bit.  `n` is the node count of the target plane;
//! all generated pairs satisfy `src ≠ dst`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rtr_graph::NodeId;

/// One roundtrip request: route from `src` to the node carrying `dst`'s TINN
/// name and back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// The node injecting the packet.
    pub src: NodeId,
    /// The destination node (the engine addresses it only by its TINN name).
    pub dst: NodeId,
}

/// The built-in request distributions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Source and destination uniform over all ordered pairs.
    Uniform,
    /// Destinations Zipf-distributed over a seeded rank permutation (rank 0
    /// most popular), sources uniform — the skewed-popularity regime where
    /// caching and sharding effects appear.
    Zipf {
        /// The Zipf exponent `s` (weight of rank `r` is `(r+1)^-s`); realistic
        /// request skew sits around `0.9–1.3`.
        exponent: f64,
    },
    /// All requests target one seeded hot node (all-to-one incast), sources
    /// uniform.
    Hotspot,
    /// A shuffled pairing of all nodes where every emitted request is
    /// immediately followed by its reverse — the bidirectional handshake
    /// pattern that exercises both legs of the roundtrip machinery evenly.
    Bidirectional,
    /// A deterministic 4-way interleave of the other generators (uniform,
    /// Zipf 1.2, hotspot, reverse-previous), approximating mixed tenant
    /// traffic from a single seed.
    Mix,
}

impl Workload {
    /// Every built-in workload, in reporting order (Zipf at its default
    /// exponent 1.2).
    pub const ALL: [Workload; 5] = [
        Workload::Uniform,
        Workload::Zipf { exponent: 1.2 },
        Workload::Hotspot,
        Workload::Bidirectional,
        Workload::Mix,
    ];

    /// Short stable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Uniform => "uniform",
            Workload::Zipf { .. } => "zipf",
            Workload::Hotspot => "hotspot",
            Workload::Bidirectional => "bidirectional",
            Workload::Mix => "mix",
        }
    }

    /// The hot destination [`Workload::Hotspot`] picks for `(n, seed)` —
    /// exactly the node every request of `Hotspot.generate(n, _, seed)`
    /// targets.  Exposed so sharding tests (and shard-column reporting) can
    /// pin the shard that owns the hotspot without regenerating the stream.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (no valid ordered pair exists).
    pub fn hotspot_destination(n: usize, seed: u64) -> NodeId {
        assert!(n >= 2, "workloads need at least two nodes");
        let mut rng = StdRng::seed_from_u64(seed);
        NodeId(rng.gen_range(0..n as u32))
    }

    /// Generates exactly `count` requests over `n` nodes from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (no valid ordered pair exists).
    pub fn generate(self, n: usize, count: usize, seed: u64) -> Vec<Request> {
        assert!(n >= 2, "workloads need at least two nodes");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(count);
        match self {
            Workload::Uniform => {
                while out.len() < count {
                    out.push(uniform_pair(&mut rng, n));
                }
            }
            Workload::Zipf { exponent } => {
                let zipf = ZipfSampler::new(n, exponent, &mut rng);
                while out.len() < count {
                    let dst = zipf.sample(&mut rng);
                    out.push(Request { src: uniform_excluding(&mut rng, n, dst), dst });
                }
            }
            Workload::Hotspot => {
                let dst = NodeId(rng.gen_range(0..n as u32));
                while out.len() < count {
                    out.push(Request { src: uniform_excluding(&mut rng, n, dst), dst });
                }
            }
            Workload::Bidirectional => {
                let mut perm: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
                loop {
                    perm.shuffle(&mut rng);
                    for pair in perm.chunks_exact(2) {
                        if out.len() >= count {
                            return out;
                        }
                        out.push(Request { src: pair[0], dst: pair[1] });
                        if out.len() < count {
                            out.push(Request { src: pair[1], dst: pair[0] });
                        }
                    }
                    if out.len() >= count {
                        return out;
                    }
                }
            }
            Workload::Mix => {
                let zipf = ZipfSampler::new(n, 1.2, &mut rng);
                let hot = NodeId(rng.gen_range(0..n as u32));
                while out.len() < count {
                    let req = match out.len() % 4 {
                        0 => uniform_pair(&mut rng, n),
                        1 => {
                            let dst = zipf.sample(&mut rng);
                            Request { src: uniform_excluding(&mut rng, n, dst), dst }
                        }
                        2 => Request { src: uniform_excluding(&mut rng, n, hot), dst: hot },
                        _ => {
                            let prev = out[out.len() - 1];
                            Request { src: prev.dst, dst: prev.src }
                        }
                    };
                    out.push(req);
                }
            }
        }
        out
    }
}

/// A uniform ordered pair with distinct endpoints.
fn uniform_pair(rng: &mut StdRng, n: usize) -> Request {
    let src = NodeId(rng.gen_range(0..n as u32));
    Request { src, dst: uniform_excluding(rng, n, src) }
}

/// A uniform node different from `excluded`.
fn uniform_excluding(rng: &mut StdRng, n: usize, excluded: NodeId) -> NodeId {
    let mut v = rng.gen_range(0..n as u32 - 1);
    if v >= excluded.0 {
        v += 1;
    }
    NodeId(v)
}

/// Inverse-CDF Zipf sampling over a seeded rank-to-node permutation.
struct ZipfSampler {
    /// `rank_to_node[r]`: the node holding popularity rank `r`.
    rank_to_node: Vec<NodeId>,
    /// Cumulative (unnormalised) weights of ranks `0..n`.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, exponent: f64, rng: &mut StdRng) -> Self {
        let mut rank_to_node: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        rank_to_node.shuffle(rng);
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for r in 0..n {
            total += ((r + 1) as f64).powf(-exponent);
            cdf.push(total);
        }
        ZipfSampler { rank_to_node, cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> NodeId {
        let total = *self.cdf.last().expect("n >= 2");
        let x: f64 = rng.gen::<f64>() * total;
        let rank = self.cdf.partition_point(|&c| c <= x).min(self.cdf.len() - 1);
        self.rank_to_node[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn every_workload_is_deterministic_and_valid() {
        for w in Workload::ALL {
            let a = w.generate(37, 500, 9);
            let b = w.generate(37, 500, 9);
            assert_eq!(a, b, "{} not deterministic", w.name());
            assert_eq!(a.len(), 500);
            for r in &a {
                assert!(r.src.index() < 37 && r.dst.index() < 37, "{} out of range", w.name());
                assert_ne!(r.src, r.dst, "{} produced a self-pair", w.name());
            }
            let c = w.generate(37, 500, 10);
            assert_ne!(a, c, "{} ignores its seed", w.name());
        }
    }

    fn dst_frequencies(reqs: &[Request]) -> HashMap<NodeId, usize> {
        let mut f = HashMap::new();
        for r in reqs {
            *f.entry(r.dst).or_insert(0) += 1;
        }
        f
    }

    #[test]
    fn zipf_is_skewed_uniform_is_not() {
        let n = 50;
        let count = 5000;
        let zipf = dst_frequencies(&Workload::Zipf { exponent: 1.2 }.generate(n, count, 3));
        let uniform = dst_frequencies(&Workload::Uniform.generate(n, count, 3));
        let hottest_zipf = *zipf.values().max().unwrap();
        let hottest_uniform = *uniform.values().max().unwrap();
        // Rank 0 carries ~22% of a Zipf(1.2) stream over 50 ranks; a uniform
        // stream's hottest destination stays near count/n.
        assert!(hottest_zipf > count / 10, "zipf hottest only {hottest_zipf}");
        assert!(hottest_uniform < count / 10, "uniform too skewed: {hottest_uniform}");
    }

    #[test]
    fn hotspot_is_all_to_one() {
        let reqs = Workload::Hotspot.generate(20, 300, 5);
        let f = dst_frequencies(&reqs);
        assert_eq!(f.len(), 1);
        assert_eq!(*f.values().next().unwrap(), 300);
    }

    #[test]
    fn hotspot_destination_matches_the_generated_stream() {
        for seed in [0u64, 5, 99] {
            let reqs = Workload::Hotspot.generate(20, 30, seed);
            let hot = Workload::hotspot_destination(20, seed);
            assert!(reqs.iter().all(|r| r.dst == hot), "seed {seed}");
        }
    }

    #[test]
    fn bidirectional_pairs_requests_with_their_reverses() {
        let reqs = Workload::Bidirectional.generate(16, 400, 7);
        for pair in reqs.chunks_exact(2) {
            assert_eq!(pair[0].src, pair[1].dst);
            assert_eq!(pair[0].dst, pair[1].src);
        }
    }

    #[test]
    fn bidirectional_handles_odd_counts_and_odd_n() {
        let reqs = Workload::Bidirectional.generate(7, 101, 1);
        assert_eq!(reqs.len(), 101);
    }

    #[test]
    fn mix_interleaves_hotspot_and_reverses() {
        let reqs = Workload::Mix.generate(30, 400, 11);
        // Every index ≡ 2 (mod 4) targets the same hot node.
        let hot = reqs[2].dst;
        for (i, r) in reqs.iter().enumerate() {
            match i % 4 {
                2 => assert_eq!(r.dst, hot),
                3 => {
                    assert_eq!(r.src, reqs[i - 1].dst);
                    assert_eq!(r.dst, reqs[i - 1].src);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn tiny_universe_still_works() {
        for w in Workload::ALL {
            let reqs = w.generate(2, 50, 2);
            assert_eq!(reqs.len(), 50);
            for r in reqs {
                assert_ne!(r.src, r.dst);
            }
        }
    }
}
