//! Destination sharding for the serving plane.
//!
//! A [`ShardMap`] partitions the node space into `shards` destination-owned
//! slices under one of two [`ShardPolicy`]s: a seeded hash (spreads hot
//! destinations independently of their ids) or contiguous ranges (preserves
//! id locality, the layout memory-pod topologies assume).  A
//! [`ShardedPlane`] pairs a [`FrozenPlane`] with a map; the engine's sharded
//! pool ([`crate::Engine::serve_sharded`],
//! [`crate::Engine::serve_verified_sharded`]) assigns shard `s` to worker
//! `s % workers` and routes every request to its destination's owner through
//! a bounded handoff channel, so each worker touches only its own shards'
//! serving statistics and verification buckets.
//!
//! The shard assignment is a pure function of the destination, never of
//! scheduling — which is what keeps every per-shard statistic (and the
//! merged [`crate::VerifiedReport`]) bit-identical across worker counts.

use crate::plane::FrozenPlane;
use crate::stats::ServeSummary;
use crate::verify::{VerifiedReport, VerifyCost};
use rtr_graph::NodeId;
use rtr_sim::RoundtripRouting;

/// How destinations are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// `shard(v) = splitmix64(seed ^ v) mod shards`: a seeded hash, so hot
    /// destinations land on shards independent of their numeric ids and two
    /// maps with different seeds disagree — useful for rebalance testing.
    Hash {
        /// Seed mixed into every node id before hashing.
        seed: u64,
    },
    /// `shard(v) = ⌊v·shards / n⌋`: contiguous id ranges balanced within one
    /// node, preserving id locality.
    Range,
}

impl ShardPolicy {
    /// Short stable name used in reports and the baseline artifact.
    pub fn name(&self) -> &'static str {
        match self {
            ShardPolicy::Hash { .. } => "hash",
            ShardPolicy::Range => "range",
        }
    }
}

/// SplitMix64 finalizer — the same mixer the in-tree `rand` shim is built
/// on, reimplemented here so a shard map needs no RNG state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic partition of `n` destinations into `shards` shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    n: usize,
    shards: usize,
    policy: ShardPolicy,
}

impl ShardMap {
    /// A map of `n` nodes into `shards` shards under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `shards` is zero.
    pub fn new(n: usize, shards: usize, policy: ShardPolicy) -> Self {
        assert!(n > 0, "a shard map needs at least one node");
        assert!(shards > 0, "a shard map needs at least one shard");
        ShardMap { n, shards, policy }
    }

    /// A seeded-hash map ([`ShardPolicy::Hash`]).
    pub fn hashed(n: usize, shards: usize, seed: u64) -> Self {
        ShardMap::new(n, shards, ShardPolicy::Hash { seed })
    }

    /// A contiguous-range map ([`ShardPolicy::Range`]).
    pub fn range(n: usize, shards: usize) -> Self {
        ShardMap::new(n, shards, ShardPolicy::Range)
    }

    /// The trivial one-shard map — the configuration under which the sharded
    /// engine must reproduce the unsharded engine exactly.
    pub fn single(n: usize) -> Self {
        ShardMap::range(n, 1)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Number of nodes partitioned.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The assignment policy.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// The shard owning destination `v` — a pure function of `v`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `v` is outside the mapped node space.
    pub fn shard_of(&self, v: NodeId) -> usize {
        debug_assert!(v.index() < self.n, "destination {v} outside the shard map");
        match self.policy {
            ShardPolicy::Hash { seed } => {
                (splitmix64(seed ^ u64::from(v.0)) % self.shards as u64) as usize
            }
            ShardPolicy::Range => v.index() * self.shards / self.n,
        }
    }

    /// The worker that owns shard `shard` in a pool of `workers` threads:
    /// `shard % workers`.  With fewer shards than workers the excess workers
    /// own nothing and only ingest + hand off.
    pub fn owner_of(&self, shard: usize, workers: usize) -> usize {
        shard % workers.max(1)
    }

    /// Every destination of `shard`, ascending.
    pub fn destinations(&self, shard: usize) -> Vec<NodeId> {
        (0..self.n as u32).map(NodeId).filter(|&v| self.shard_of(v) == shard).collect()
    }

    /// `sizes[s]`: destinations owned by shard `s`.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.shards];
        for v in 0..self.n as u32 {
            sizes[self.shard_of(NodeId(v))] += 1;
        }
        sizes
    }
}

/// A [`FrozenPlane`] paired with the [`ShardMap`] its workers serve under.
/// Cloning copies the plane's `Arc`s and the (plain-old-data) map.
#[derive(Debug, Clone)]
pub struct ShardedPlane<S> {
    plane: FrozenPlane<S>,
    map: ShardMap,
}

impl<S: RoundtripRouting> ShardedPlane<S> {
    /// Pairs `plane` with `map`.
    ///
    /// # Panics
    ///
    /// Panics if the map's node count differs from the plane's.
    pub fn new(plane: FrozenPlane<S>, map: ShardMap) -> Self {
        assert_eq!(
            map.node_count(),
            plane.node_count(),
            "shard map and plane must cover the same node space"
        );
        ShardedPlane { plane, map }
    }

    /// The underlying frozen plane.
    pub fn plane(&self) -> &FrozenPlane<S> {
        &self.plane
    }

    /// The shard assignment.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }
}

/// Per-shard accounting of one sharded serve run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardServeStats {
    /// The shard.
    pub shard: usize,
    /// Requests whose destination lands in this shard — a pure function of
    /// the request stream and the map, identical for any worker count.
    pub queries: u64,
    /// Requests that crossed workers (through the handoff channel) to reach
    /// this shard's owner.  Schedule-**dependent** — which worker pulls a
    /// chunk decides whether its requests hand off — so it belongs with the
    /// cost counters, not the report: one worker always measures zero.
    pub handoffs: u64,
}

/// The outcome of [`crate::Engine::serve_sharded`]: the merged serving
/// summary (identical to the unsharded engine's) plus per-shard accounting,
/// sorted by shard.
#[derive(Debug, Clone)]
pub struct ShardedServe {
    /// Aggregate throughput/latency accounting, merged over all shards.
    pub summary: ServeSummary,
    /// Per-shard accounting, sorted by shard id.
    pub shards: Vec<ShardServeStats>,
}

/// The outcome of [`crate::Engine::serve_verified_sharded`]: the merged
/// summary and deterministic report (both identical to the unsharded
/// engine's), the schedule-dependent verification cost, and per-shard
/// accounting.
#[derive(Debug, Clone)]
pub struct VerifiedShardedServe {
    /// Aggregate throughput/latency accounting, merged over all shards.
    pub summary: ServeSummary,
    /// The deterministic verification outcome — bit-identical to the
    /// unsharded engine and the sequential replay for any shard × worker
    /// count.
    pub report: VerifiedReport,
    /// Flush/row cost counters, summed over all shards.
    pub cost: VerifyCost,
    /// Per-shard accounting, sorted by shard id.
    pub shards: Vec<ShardServeStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_policy_partitions_the_node_space() {
        for map in [ShardMap::hashed(97, 4, 7), ShardMap::range(97, 4), ShardMap::single(97)] {
            let sizes = map.shard_sizes();
            assert_eq!(sizes.len(), map.shard_count());
            assert_eq!(sizes.iter().sum::<usize>(), 97);
            let mut seen = 0usize;
            for (s, &size) in sizes.iter().enumerate() {
                let dests = map.destinations(s);
                assert_eq!(dests.len(), size);
                assert!(dests.iter().all(|&v| map.shard_of(v) == s));
                seen += dests.len();
            }
            assert_eq!(seen, 97);
        }
    }

    #[test]
    fn range_policy_is_contiguous_and_balanced() {
        let map = ShardMap::range(10, 3);
        let shards: Vec<usize> = (0..10u32).map(|v| map.shard_of(NodeId(v))).collect();
        assert_eq!(shards, [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
        // Balanced within one node for any (n, shards).
        for (n, k) in [(100usize, 7usize), (31, 4), (5, 5), (64, 16)] {
            let sizes = ShardMap::range(n, k).shard_sizes();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "range({n},{k}) sizes {sizes:?}");
        }
    }

    #[test]
    fn hash_policy_depends_on_its_seed_and_spreads_ids() {
        let a = ShardMap::hashed(64, 4, 1);
        let b = ShardMap::hashed(64, 4, 2);
        let differs = (0..64u32).any(|v| a.shard_of(NodeId(v)) != b.shard_of(NodeId(v)));
        assert!(differs, "two seeds produced the same assignment");
        // No shard is starved on a reasonable instance.
        assert!(a.shard_sizes().iter().all(|&s| s > 0), "{:?}", a.shard_sizes());
    }

    #[test]
    fn more_shards_than_nodes_leaves_some_empty() {
        let map = ShardMap::range(3, 8);
        let sizes = map.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 3);
        assert!(sizes.iter().filter(|&&s| s == 0).count() >= 5);
    }

    #[test]
    fn owner_assignment_wraps_over_workers() {
        let map = ShardMap::range(20, 5);
        assert_eq!(map.owner_of(0, 2), 0);
        assert_eq!(map.owner_of(1, 2), 1);
        assert_eq!(map.owner_of(4, 2), 0);
        // One worker owns everything; zero is clamped.
        assert_eq!(map.owner_of(3, 1), 0);
        assert_eq!(map.owner_of(3, 0), 0);
    }
}
