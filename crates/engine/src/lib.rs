//! # rtr-engine — the sharded, multi-threaded route-serving plane
//!
//! The paper's schemes are built once and then answer an unbounded stream of
//! roundtrip requests.  The sequential [`rtr_sim::Simulator`] drives one
//! packet at a time; this crate is the layer that turns a built scheme into a
//! **serving plane** under concurrent, skewed, high-volume load:
//!
//! * [`FrozenPlane`] — a read-only snapshot of a built
//!   [`rtr_sim::RoundtripRouting`] scheme, its graph and the TINN naming,
//!   behind `Arc`s: shareable across worker threads (and clonable into
//!   shards) without locks, because forwarding is `&self` end to end.
//! * [`Workload`] — composable, seeded request generators: uniform pairs,
//!   Zipf-skewed destinations, all-to-one hotspots, bidirectional shuffles
//!   and a deterministic mix, all built on the in-tree `rand` shim so runs
//!   reproduce bit for bit.
//! * [`Engine`] — a scoped worker pool with batched work stealing over
//!   request chunks.  Workers serve through the allocation-free
//!   [`rtr_sim::Simulator::roundtrip_brief`] path and accumulate statistics
//!   privately; the only shared atomic on the hot path is the chunk counter.
//! * [`ShardMap`] / [`ShardedPlane`] / [`Engine::serve_sharded`] — the
//!   **sharded plane**: destinations partition into worker-owned shards
//!   (seeded-hash or contiguous-range [`ShardPolicy`]), each worker serves
//!   only the shards it owns, and cross-shard requests travel through
//!   bounded handoff channels with backpressure instead of being served
//!   wherever they were pulled.  Per-shard query counts are deterministic;
//!   the merged summary is identical to the unsharded engine's.
//! * [`VerifyMode`] / [`Engine::serve_verified`] /
//!   [`Engine::serve_verified_sharded`] — the **verification plane**: off /
//!   sampled / full-stream checking of every served trip against a
//!   [`rtr_metric::DistanceOracle`].  Checked trips buffer in bounded
//!   destination buckets — per worker unsharded, per shard sharded — and
//!   every bucket flushes through one shared roundtrip row, so verification
//!   pays two Dijkstras per *distinct destination* per flush window instead
//!   of two per query; with per-shard buckets no destination row is ever
//!   fetched by two workers, so total verify rows stay
//!   `≤ 2 · distinct(destinations)` regardless of worker count.  The
//!   [`VerifiedReport`] (exact fixed-point stretch histogram, worst trip,
//!   bound violations) is bit-identical for any shard × worker count and
//!   hard-fails — [`VerifyServeError::BoundExceeded`] — when a trip exceeds
//!   the scheme's proven stretch ceiling.
//! * [`Engine::serve_epoch_sharded`] / [`chaos_report`] — the **chaos
//!   plane**: tolerant verified serving through a fault window (routing
//!   failures are recorded per pair instead of aborting the pool) and the
//!   per-epoch breakdown — pre-fault / degraded / post-repair — attached to
//!   the merged [`VerifiedReport`] as [`VerifiedReport::epochs`], listing
//!   exactly which pairs exceeded the proven ceiling and which ones repair
//!   restored.
//! * [`Engine::open_stream`] / [`VerifiedStream`] — the **streaming request
//!   source**: the same verified sharded serving fed batch by batch, for
//!   callers (the `rtr-serve` TCP front door) that receive requests over
//!   time.  However the stream is split, the final report is bit-identical
//!   to one [`Engine::serve_verified_sharded`] call over the whole stream.
//!
//! The engine is **observationally identical** to the sequential simulator:
//! [`Engine::collect`] returns the very [`rtr_sim::RoundtripReport`]s a
//! sequential loop produces, in request order, for any worker count — and
//! both verified paths reproduce the sequential oracle-checked replay
//! [`verify_sequential`] bit for bit — properties the test-suite enforces
//! per scheme, workload, shard count, and oracle flavor.
//!
//! ```
//! use rtr_engine::{
//!     Engine, EngineConfig, FrozenPlane, ShardMap, ShardedPlane, StretchBound, VerifyConfig,
//!     Workload,
//! };
//! use rtr_core::naming::NamingAssignment;
//! use rtr_core::{Stretch6Params, StretchSix};
//! use rtr_graph::generators::strongly_connected_gnp;
//! use rtr_metric::DistanceMatrix;
//! use rtr_namedep::ExactOracleScheme;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = Arc::new(strongly_connected_gnp(48, 0.1, 7)?);
//! let m = DistanceMatrix::build(&g);
//! let names = NamingAssignment::random(g.node_count(), 1);
//! let scheme =
//!     StretchSix::build(&g, &m, &names, ExactOracleScheme::build(&g), Stretch6Params::default());
//! let plane = FrozenPlane::freeze(Arc::clone(&g), scheme, Arc::new(names.to_names()));
//!
//! // Full-stream verification: every query checked against the exact
//! // metric, hard-failing if any trip exceeded the proven stretch 6.
//! let requests = Workload::Zipf { exponent: 1.2 }.generate(g.node_count(), 4_000, 9);
//! let engine = Engine::new(EngineConfig::with_workers(4));
//! let config = VerifyConfig::full().with_bound(StretchBound::at_most(6));
//! let verified = engine.serve_verified(&plane, &requests, &m, &config)?;
//! assert_eq!(verified.report.checked, 4_000);
//! assert!(verified.report.is_clean());
//! assert!(verified.report.max_stretch() <= 6.0 + 1e-9); // the §2 scheme's hard bound
//!
//! // The same stream over a 3-shard plane: bit-identical report, per-shard
//! // buckets, cross-shard requests over bounded handoff channels.
//! let sharded = ShardedPlane::new(plane, ShardMap::hashed(g.node_count(), 3, 42));
//! let outcome = engine.serve_verified_sharded(&sharded, &requests, &m, &config)?;
//! assert_eq!(outcome.report, verified.report);
//! assert_eq!(outcome.shards.iter().map(|s| s.queries).sum::<u64>(), 4_000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chaos;
mod engine;
mod plane;
mod shard;
mod stats;
mod stream;
mod verify;
mod workload;

pub use chaos::{chaos_report, EpochKind, EpochReport, EpochServe, FailedPair};
pub use engine::{Engine, EngineConfig};
pub use plane::FrozenPlane;
pub use shard::{
    ShardMap, ShardPolicy, ShardServeStats, ShardedPlane, ShardedServe, VerifiedShardedServe,
};
pub use stats::ServeSummary;
pub use stream::{ServedTrip, VerifiedStream};
pub use verify::{
    verify_sequential, StretchBound, StretchHistogram, VerifiedReport, VerifiedServe, VerifiedTrip,
    VerifyConfig, VerifyCost, VerifyMode, VerifyServeError, STRETCH_HISTOGRAM_SCALE,
};
pub use workload::{Request, Workload};
