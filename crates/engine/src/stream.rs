//! Streaming verified serving: the request-source entry point for callers —
//! like the TCP front door in `rtr-serve` — that do not hold the whole
//! request stream up front.
//!
//! [`Engine::open_stream`] opens a long-lived [`VerifiedStream`] session
//! over a [`ShardedPlane`].  Each [`VerifiedStream::serve_batch`] call
//! serves one micro-batch through the same per-shard destination buckets as
//! [`Engine::serve_verified_sharded`] and assigns every request a **global
//! stream index** in admission order; [`VerifiedStream::finish`] closes the
//! session into a [`VerifiedShardedServe`].
//!
//! The load-bearing property (asserted by the tests below): however the
//! stream is split into batches, the final [`crate::VerifiedReport`] is
//! **bit-identical** to one [`Engine::serve_verified_sharded`] call over the
//! concatenated stream.  This holds because the report is already
//! flush-schedule-independent — counts and totals merge commutatively, the
//! worst trip is a maximum under a total order, and violations sort by
//! global index — so cutting the stream into per-batch flushes changes only
//! the schedule-dependent [`crate::VerifyCost`], never the report.  The row
//! economy survives too: per-batch flushes re-touch destination rows, but a
//! verify oracle whose cache holds `2 · distinct(destinations)` rows turns
//! every repeat into a cache hit, so *computed* rows stay
//! `≈ 2 · distinct(stream destinations)` regardless of arrival order.

use crate::engine::Engine;
use crate::shard::{ShardServeStats, ShardedPlane, VerifiedShardedServe};
use crate::stats::{ServeSummary, WorkerStats};
use crate::verify::{
    VerifiedReport, VerifyAccumulator, VerifyConfig, VerifyCost, VerifyServeError,
};
use crate::workload::Request;
use rtr_graph::Distance;
use rtr_metric::DistanceOracle;
use rtr_sim::RoundtripRouting;
use std::time::{Duration, Instant};

/// One served request of a [`VerifiedStream`] batch — the reply a network
/// front door sends back to the requesting client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedTrip {
    /// Global index of the request in the stream, assigned in admission
    /// order by the session.
    pub index: usize,
    /// Total hops of the served roundtrip.
    pub hops: usize,
    /// Measured roundtrip weight of the served route.
    pub weight: Distance,
}

/// Per-shard accumulator of one batch: serving stats, the verification
/// buckets, and the per-request replies.
type BatchAcc = (WorkerStats, VerifyAccumulator, Vec<ServedTrip>);

/// A long-lived verified serving session fed batch by batch.
///
/// Obtained from [`Engine::open_stream`]; the docs at the top of
/// `stream.rs` spell out the equivalence and row-economy contracts.
#[derive(Debug)]
pub struct VerifiedStream<'a, S, O: ?Sized> {
    engine: &'a Engine,
    plane: &'a ShardedPlane<S>,
    oracle: &'a O,
    config: VerifyConfig,
    next_index: usize,
    merged: WorkerStats,
    report: VerifiedReport,
    cost: VerifyCost,
    shards: Vec<ShardServeStats>,
    serve_wall: Duration,
}

impl Engine {
    /// Opens a streaming verified session over `plane`: the incremental
    /// counterpart of [`Engine::serve_verified_sharded`] for callers that
    /// receive requests over time (the `rtr-serve` front door) instead of
    /// holding a pre-generated workload.
    ///
    /// The session's [`VerifyConfig::strict`] contract is enforced at
    /// [`VerifiedStream::finish`], not per batch, so a violation discovered
    /// mid-stream never aborts serving.
    ///
    /// ```
    /// use rtr_core::naming::NamingAssignment;
    /// use rtr_core::{Stretch6Params, StretchSix};
    /// use rtr_engine::{Engine, EngineConfig, FrozenPlane, ShardMap, ShardedPlane};
    /// use rtr_engine::{VerifyConfig, Workload};
    /// use rtr_graph::generators::strongly_connected_gnp;
    /// use rtr_metric::DistanceMatrix;
    /// use rtr_namedep::ExactOracleScheme;
    /// use std::sync::Arc;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = Arc::new(strongly_connected_gnp(32, 0.15, 5)?);
    /// let m = DistanceMatrix::build(&g);
    /// let names = NamingAssignment::random(g.node_count(), 1);
    /// let scheme =
    ///     StretchSix::build(&g, &m, &names, ExactOracleScheme::build(&g), Stretch6Params::default());
    /// let plane = FrozenPlane::freeze(Arc::clone(&g), scheme, Arc::new(names.to_names()));
    /// let sharded = ShardedPlane::new(plane, ShardMap::hashed(32, 3, 7));
    /// let requests = Workload::Mix.generate(32, 600, 11);
    /// let engine = Engine::new(EngineConfig::with_workers(2));
    /// let config = VerifyConfig::full();
    ///
    /// // Feed the stream in uneven batches: the final report is
    /// // bit-identical to one serve_verified_sharded call over the whole
    /// // stream.
    /// let mut session = engine.open_stream(&sharded, &m, &config);
    /// for chunk in requests.chunks(17) {
    ///     let replies = session.serve_batch(chunk)?;
    ///     assert_eq!(replies.len(), chunk.len());
    /// }
    /// let streamed = session.finish()?;
    /// let oneshot = engine.serve_verified_sharded(&sharded, &requests, &m, &config)?;
    /// assert_eq!(streamed.report, oneshot.report);
    /// # Ok(())
    /// # }
    /// ```
    pub fn open_stream<'a, S, O>(
        &'a self,
        plane: &'a ShardedPlane<S>,
        oracle: &'a O,
        verify: &VerifyConfig,
    ) -> VerifiedStream<'a, S, O>
    where
        S: RoundtripRouting + Send + Sync,
        O: DistanceOracle + ?Sized,
    {
        let shards = plane.map().shard_count();
        VerifiedStream {
            engine: self,
            plane,
            oracle,
            config: *verify,
            next_index: 0,
            merged: WorkerStats::new(),
            report: VerifiedReport::default(),
            cost: VerifyCost::default(),
            shards: (0..shards)
                .map(|s| ShardServeStats { shard: s, queries: 0, handoffs: 0 })
                .collect(),
            serve_wall: Duration::ZERO,
        }
    }
}

impl<S, O> VerifiedStream<'_, S, O>
where
    S: RoundtripRouting + Send + Sync,
    O: DistanceOracle + ?Sized,
{
    /// Serves one micro-batch, verifying it through the session's per-shard
    /// destination buckets, and returns the per-request replies sorted by
    /// their assigned global stream index (`replies[i]` answers
    /// `requests[i]`).
    ///
    /// Batches no larger than [`crate::EngineConfig::chunk_size`] are served
    /// inline on the calling thread (a network front door coalescing small
    /// request bursts should not pay a pool spawn per burst); larger batches
    /// fan out over the engine's sharded worker pool.  Both paths produce
    /// identical reports and replies.
    ///
    /// # Errors
    ///
    /// The first simulator error, as [`VerifyServeError::Sim`].  A failed
    /// batch contributes nothing to the session: no indices are consumed and
    /// the report is unchanged (oracle cache warm-up from partial
    /// verification may have occurred).
    pub fn serve_batch(
        &mut self,
        requests: &[Request],
    ) -> Result<Vec<ServedTrip>, VerifyServeError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let base = self.next_index;
        let started = Instant::now();
        let per_shard = if requests.len() <= self.engine.config().chunk_size.max(1) {
            self.serve_batch_inline(requests, base)?
        } else {
            self.serve_batch_pooled(requests, base)?
        };
        let elapsed = started.elapsed();

        let mut replies = Vec::with_capacity(requests.len());
        let mut accs = Vec::with_capacity(per_shard.len());
        let mut batch_queries = 0usize;
        let mut batch_handoffs = 0u64;
        for (shard, handoffs, (stats, acc, served)) in per_shard {
            let slot = &mut self.shards[shard];
            slot.queries += stats.queries as u64;
            slot.handoffs += handoffs;
            batch_queries += stats.queries;
            batch_handoffs += handoffs;
            self.merged.merge(stats);
            accs.push(acc);
            replies.extend(served);
        }
        debug_assert_eq!(batch_queries, requests.len(), "a batch request went unserved");
        if batch_handoffs > 0 {
            rtr_telemetry::counter("engine.handoffs").add(batch_handoffs);
        }
        let (report, cost) = VerifyAccumulator::merge_all(accs, batch_queries);
        self.report.merge(report);
        self.cost.merge(cost);
        self.serve_wall += elapsed;
        self.next_index = base + requests.len();
        replies.sort_unstable_by_key(|t| t.index);
        Ok(replies)
    }

    /// The sequential path for small batches: per-shard buckets on the
    /// calling thread, one shared flush sweep at the end — exactly the
    /// one-worker sharded pool, minus the threads (handoffs stay 0).
    fn serve_batch_inline(
        &self,
        requests: &[Request],
        base: usize,
    ) -> Result<Vec<(usize, u64, BatchAcc)>, VerifyServeError> {
        let map = self.plane.map();
        let plane = self.plane.plane();
        let sim = plane.simulator();
        let mode = self.config.mode;
        let mut accs: Vec<(usize, u64, BatchAcc)> = (0..map.shard_count())
            .map(|s| {
                (s, 0u64, (WorkerStats::new(), VerifyAccumulator::new(&self.config), Vec::new()))
            })
            .collect();
        for (off, req) in requests.iter().enumerate() {
            let index = base + off;
            let slot = &mut accs[map.shard_of(req.dst)].2;
            let brief =
                sim.roundtrip_brief(plane.scheme(), req.src, req.dst, plane.name_of(req.dst))?;
            slot.0.record(&brief);
            if mode.checks(index) {
                slot.1.push(self.oracle, index, req, brief.total_weight());
            }
            slot.2.push(ServedTrip {
                index,
                hops: brief.total_hops(),
                weight: brief.total_weight(),
            });
        }
        let mut parts: Vec<&mut VerifyAccumulator> =
            accs.iter_mut().map(|(_, _, a)| &mut a.1).collect();
        VerifyAccumulator::flush_sharded(&mut parts, self.oracle);
        Ok(accs)
    }

    /// The pooled path for large batches: the sharded worker pool with
    /// global indices offset by `base`.
    fn serve_batch_pooled(
        &self,
        requests: &[Request],
        base: usize,
    ) -> Result<Vec<(usize, u64, BatchAcc)>, VerifyServeError> {
        let mode = self.config.mode;
        let config = self.config;
        let oracle = self.oracle;
        let out = self.engine.run_sharded_pool(
            self.plane,
            requests,
            |_shard| (WorkerStats::new(), VerifyAccumulator::new(&config), Vec::new()),
            |sim, plane, index, req, (stats, acc, served): &mut BatchAcc| {
                let brief =
                    sim.roundtrip_brief(plane.scheme(), req.src, req.dst, plane.name_of(req.dst))?;
                stats.record(&brief);
                let global = base + index;
                if mode.checks(global) {
                    acc.push(oracle, global, req, brief.total_weight());
                }
                served.push(ServedTrip {
                    index: global,
                    hops: brief.total_hops(),
                    weight: brief.total_weight(),
                });
                Ok(())
            },
            |owned| {
                let mut parts: Vec<&mut VerifyAccumulator> =
                    owned.iter_mut().map(|(_, _, (_, acc, _))| acc).collect();
                VerifyAccumulator::flush_sharded(&mut parts, oracle);
                Ok(())
            },
        )?;
        Ok(out)
    }

    /// Requests served so far (the next global index to be assigned).
    pub fn served(&self) -> usize {
        self.next_index
    }

    /// The verification report accumulated so far.  Buckets drain at the end
    /// of every batch, so this is always complete up to the last
    /// [`serve_batch`](Self::serve_batch) — the `/report` endpoint of the
    /// front door serves a clone of exactly this.
    pub fn report(&self) -> &VerifiedReport {
        &self.report
    }

    /// The schedule-dependent flush/row cost counters so far.
    pub fn cost(&self) -> &VerifyCost {
        &self.cost
    }

    /// Closes the session: folds the merged serving stats into telemetry
    /// (once, like every one-shot serve call), and returns the same
    /// [`VerifiedShardedServe`] the one-shot engine would have produced for
    /// the concatenated stream — modulo the schedule-dependent cost and
    /// handoff counters.
    ///
    /// # Errors
    ///
    /// In strict mode, [`VerifyServeError::ShardedBoundExceeded`] when any
    /// checked trip exceeded the configured stretch bound; the full outcome
    /// rides along.
    pub fn finish(self) -> Result<VerifiedShardedServe, VerifyServeError> {
        let workers = self.engine.config().workers.max(1);
        let mut report = self.report;
        report.violations.sort_by_key(|v| v.index);
        let summary = ServeSummary::from_stats(self.merged, workers, self.serve_wall);
        let outcome =
            VerifiedShardedServe { summary, report, cost: self.cost, shards: self.shards };
        if self.config.strict && !outcome.report.is_clean() {
            return Err(VerifyServeError::ShardedBoundExceeded(Box::new(outcome)));
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::tests::ring_plane;
    use crate::workload::Workload;
    use crate::{EngineConfig, ShardMap, StretchBound};
    use rtr_metric::DistanceMatrix;

    #[test]
    fn streaming_matches_one_shot_for_any_split() {
        let plane = ring_plane(16);
        let m = DistanceMatrix::build(plane.graph());
        let requests = Workload::Mix.generate(16, 900, 5);
        let engine = Engine::new(EngineConfig::with_workers(3));
        let sharded = ShardedPlane::new(plane, ShardMap::hashed(16, 4, 9));
        let config = VerifyConfig::full();
        let oneshot = engine.serve_verified_sharded(&sharded, &requests, &m, &config).unwrap();
        // Splits cover both serve_batch paths: 1/7 inline, 256 boundary,
        // 333/900 pooled.
        for split in [1usize, 7, 256, 333, 900] {
            let mut session = engine.open_stream(&sharded, &m, &config);
            let mut replies = Vec::new();
            for chunk in requests.chunks(split) {
                replies.extend(session.serve_batch(chunk).unwrap());
            }
            assert_eq!(session.served(), 900);
            let streamed = session.finish().unwrap();
            assert_eq!(streamed.report, oneshot.report, "split {split}");
            assert_eq!(streamed.summary.queries, 900);
            let shard_queries: Vec<(usize, u64)> =
                streamed.shards.iter().map(|s| (s.shard, s.queries)).collect();
            let expected: Vec<(usize, u64)> =
                oneshot.shards.iter().map(|s| (s.shard, s.queries)).collect();
            assert_eq!(shard_queries, expected, "split {split}");
            assert_eq!(replies.len(), 900);
            assert!(replies.iter().enumerate().all(|(i, t)| t.index == i));
        }
    }

    #[test]
    fn replies_match_the_sequential_simulator() {
        let plane = ring_plane(11);
        let m = DistanceMatrix::build(plane.graph());
        let requests = Workload::Uniform.generate(11, 300, 17);
        let engine = Engine::new(EngineConfig::with_workers(2));
        let sharded = ShardedPlane::new(plane.clone(), ShardMap::range(11, 3));
        let mut session = engine.open_stream(&sharded, &m, &VerifyConfig::full());
        let mut replies = Vec::new();
        for chunk in requests.chunks(100) {
            replies.extend(session.serve_batch(chunk).unwrap());
        }
        let sim = plane.simulator();
        for (req, trip) in requests.iter().zip(&replies) {
            let brief = sim
                .roundtrip_brief(plane.scheme(), req.src, req.dst, plane.name_of(req.dst))
                .unwrap();
            assert_eq!(trip.hops, brief.total_hops());
            assert_eq!(trip.weight, brief.total_weight());
        }
    }

    #[test]
    fn sampled_mode_strides_by_global_index_across_batches() {
        let plane = ring_plane(9);
        let m = DistanceMatrix::build(plane.graph());
        let requests = Workload::Zipf { exponent: 1.1 }.generate(9, 500, 23);
        let engine = Engine::new(EngineConfig::with_workers(2));
        let sharded = ShardedPlane::new(plane, ShardMap::hashed(9, 2, 3));
        let config = VerifyConfig::sampled(7);
        let oneshot = engine.serve_verified_sharded(&sharded, &requests, &m, &config).unwrap();
        let mut session = engine.open_stream(&sharded, &m, &config);
        for chunk in requests.chunks(13) {
            session.serve_batch(chunk).unwrap();
        }
        let streamed = session.finish().unwrap();
        assert_eq!(streamed.report, oneshot.report);
        assert_eq!(streamed.report.checked, 500usize.div_ceil(7));
    }

    #[test]
    fn strict_sessions_fail_at_finish_not_per_batch() {
        let plane = ring_plane(12);
        let m = DistanceMatrix::build(plane.graph());
        let requests = Workload::Uniform.generate(12, 120, 5);
        let engine = Engine::default();
        let sharded = ShardedPlane::new(plane, ShardMap::range(12, 2));
        // An impossible ceiling (stretch < 1/2) flags every trip, but batches
        // keep serving; the strict contract fires when the session closes.
        let config = VerifyConfig::full().with_bound(StretchBound { num: 1, den: 2 });
        let mut session = engine.open_stream(&sharded, &m, &config);
        for chunk in requests.chunks(40) {
            session.serve_batch(chunk).unwrap();
        }
        let err = session.finish().unwrap_err();
        let VerifyServeError::ShardedBoundExceeded(outcome) = err else {
            panic!("expected ShardedBoundExceeded");
        };
        assert_eq!(outcome.report.violations.len(), 120);
        let indices: Vec<usize> = outcome.report.violations.iter().map(|v| v.index).collect();
        assert_eq!(indices, (0..120).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batches_are_free() {
        let plane = ring_plane(5);
        let m = DistanceMatrix::build(plane.graph());
        let engine = Engine::default();
        let sharded = ShardedPlane::new(plane, ShardMap::single(5));
        let mut session = engine.open_stream(&sharded, &m, &VerifyConfig::full());
        assert!(session.serve_batch(&[]).unwrap().is_empty());
        assert_eq!(session.served(), 0);
        let outcome = session.finish().unwrap();
        assert_eq!(outcome.report, VerifiedReport::default());
    }
}
