//! Full-stream verification: every served roundtrip checked against the
//! exact metric, destination-batched so the oracle cost scales with
//! *distinct destinations*, not with queries.
//!
//! All stretch accounting lives here: under [`VerifyMode::Sampled`] a
//! 1-in-N strided subset of requests is checked (subsuming the retired
//! strided stretch sample of the plain serve path), and under
//! [`VerifyMode::Full`] every request's measured roundtrip cost is compared
//! — in exact integer arithmetic — against the oracle's roundtrip distance,
//! an exact fixed-point stretch histogram is accumulated, and any query
//! exceeding the scheme's proven stretch bound is reported (and, in strict
//! mode, fails the run).
//!
//! The cost model: checked trips buffer in **bounded destination buckets**
//! — per worker in the unsharded engine, per destination shard in the
//! sharded engine — and each bucket set flushes through ONE shared roundtrip
//! row per distinct destination ([`rtr_metric::roundtrip_rows_batched`]; a
//! sharded worker drains all its shards' buckets in one
//! [`rtr_metric::roundtrip_rows_sharded`] sweep, which prefetches row
//! windows across shard boundaries).  A flush therefore pays two Dijkstras
//! per distinct destination in the bucket window (modulo oracle cache hits),
//! so skewed workloads (Zipf, hotspot) verify almost for free and uniform
//! load costs at most `2 · min(n, window)` rows per flush.  Because shards
//! partition the destination space, per-shard buckets never fetch the same
//! destination row on two workers: total verify rows stay
//! `≤ 2 · distinct(stream destinations)` regardless of worker count.
//! Backpressure: an accumulator flushes whenever its buffered trips reach
//! [`VerifyConfig::flush_pending`], so verification memory is bounded
//! regardless of stream length.
//!
//! Determinism: a [`VerifiedReport`] depends only on the request stream and
//! the oracle — never on worker count, chunk scheduling, or flush timing.
//! Counts and totals merge commutatively, the worst case is the maximum
//! under a total order (stretch, then request index), and violations are
//! sorted by global request index.  The `verify_conformance` test-suite
//! asserts reports bit-identical across 1/2/8 workers and to
//! [`verify_sequential`], the sequential oracle-checked replay.

use crate::plane::FrozenPlane;
use crate::workload::Request;
use rtr_graph::{Distance, NodeId, INFINITY};
use rtr_metric::{roundtrip_rows_batched, roundtrip_rows_sharded, DistanceOracle};
use rtr_sim::{RoundtripRouting, SimError};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

/// How much of the request stream the engine verifies against the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyMode {
    /// No verification: [`crate::Engine::serve_verified`] serves the stream
    /// with an empty report.
    Off,
    /// Verify a strided sample: request `i` is checked iff
    /// `i % stride == 0` (by *global* request index, so the checked set is
    /// identical for any worker count).  This subsumes the retired
    /// `StretchSample` machinery of the plain serve path: same strided
    /// subset, but checked in exact arithmetic against the oracle.
    Sampled {
        /// The sampling stride (clamped to at least 1).
        stride: usize,
    },
    /// Verify every request — full-stream verification.
    Full,
}

impl VerifyMode {
    /// Short stable name used in reports and the baseline artifact.
    pub fn name(&self) -> &'static str {
        match self {
            VerifyMode::Off => "off",
            VerifyMode::Sampled { .. } => "sampled",
            VerifyMode::Full => "full",
        }
    }

    /// True when request `index` is checked under this mode.
    pub(crate) fn checks(&self, index: usize) -> bool {
        match *self {
            VerifyMode::Off => false,
            VerifyMode::Sampled { stride } => index.is_multiple_of(stride.max(1)),
            VerifyMode::Full => true,
        }
    }
}

/// A rational stretch ceiling `num/den`: a trip of measured cost `w` against
/// exact roundtrip distance `r` violates the bound iff `w·den > num·r`
/// (checked in `u128`, never in floats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StretchBound {
    /// Numerator of the ceiling.
    pub num: u64,
    /// Denominator of the ceiling.
    pub den: u64,
}

impl StretchBound {
    /// An integer ceiling `bound/1` — the form of every bound the paper
    /// proves (6 for §2, `(2^k − 1)·4(2k_c − 1)` for §3, `8k² + 4k − 4` for
    /// §4).
    pub fn at_most(bound: u64) -> Self {
        StretchBound { num: bound, den: 1 }
    }

    /// True when `measured > (num/den) · exact`.
    pub fn exceeded_by(&self, measured: Distance, exact: Distance) -> bool {
        (measured as u128) * (self.den as u128) > (self.num as u128) * (exact as u128)
    }
}

impl fmt::Display for StretchBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Configuration of one verified serve run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerifyConfig {
    /// How much of the stream is checked.
    pub mode: VerifyMode,
    /// The scheme's proven stretch ceiling, if it has one.  Checked trips
    /// exceeding it are recorded as [`VerifiedReport::violations`]; `None`
    /// (measured-not-proven substrates) still verifies and accumulates the
    /// histogram but can never fail.
    pub bound: Option<StretchBound>,
    /// Backpressure threshold: a worker flushes its destination buckets
    /// whenever this many trips are buffered, bounding verification memory
    /// at `flush_pending` trips per worker (clamped to at least 1).
    pub flush_pending: usize,
    /// When true (the default) a run whose report contains violations
    /// returns [`VerifyServeError::BoundExceeded`] instead of the report —
    /// the hard-fail contract of oracle-backed serving.  Tests that inspect
    /// the violation list set this to false.
    pub strict: bool,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig { mode: VerifyMode::Full, bound: None, flush_pending: 4096, strict: true }
    }
}

impl VerifyConfig {
    /// Full-stream verification with no stretch ceiling.
    pub fn full() -> Self {
        VerifyConfig::default()
    }

    /// Strided verification with no stretch ceiling.
    pub fn sampled(stride: usize) -> Self {
        VerifyConfig { mode: VerifyMode::Sampled { stride }, ..VerifyConfig::default() }
    }

    /// No verification at all.
    pub fn off() -> Self {
        VerifyConfig { mode: VerifyMode::Off, ..VerifyConfig::default() }
    }

    /// The same configuration with a proven stretch ceiling to enforce.
    #[must_use]
    pub fn with_bound(mut self, bound: StretchBound) -> Self {
        self.bound = Some(bound);
        self
    }
}

/// Fixed-point stretch subdivisions per unit: bucket `b` of the histogram
/// covers stretches in `[b/32, (b+1)/32)`, computed by exact integer
/// division — so the histogram is bit-identical however trips are scheduled.
pub const STRETCH_HISTOGRAM_SCALE: u64 = 32;

/// Exact buckets up to stretch 64; larger stretches land in the final
/// overflow bucket.
const STRETCH_BUCKETS: usize = 64 * STRETCH_HISTOGRAM_SCALE as usize;

/// Exact fixed-point histogram of verified stretches.
///
/// Bucketing is pure integer arithmetic (`⌊measured·32 / exact⌋`), so two
/// runs that verify the same trips produce the same histogram regardless of
/// worker count or flush order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StretchHistogram {
    /// `buckets[b]`: trips with `⌊measured·SCALE/exact⌋ = b`
    /// (`buckets[STRETCH_BUCKETS]` collects the overflow).
    buckets: Vec<u64>,
    count: u64,
}

impl Default for StretchHistogram {
    fn default() -> Self {
        StretchHistogram { buckets: vec![0; STRETCH_BUCKETS + 1], count: 0 }
    }
}

impl StretchHistogram {
    fn record(&mut self, measured: Distance, exact: Distance) {
        let b = ((measured as u128) * (STRETCH_HISTOGRAM_SCALE as u128) / (exact as u128))
            .min(STRETCH_BUCKETS as u128) as usize;
        self.buckets[b] += 1;
        self.count += 1;
    }

    fn merge(&mut self, other: &StretchHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }

    /// Trips recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of fixed-point buckets, including the final overflow bucket —
    /// the exclusive upper bound on indices from
    /// [`nonzero_buckets`](Self::nonzero_buckets).
    pub const BUCKET_COUNT: usize = STRETCH_BUCKETS + 1;

    /// The non-empty buckets as ascending `(bucket, count)` pairs — the
    /// canonical sparse form the wire codec serializes (see
    /// `docs/PROTOCOL.md`).
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets.iter().enumerate().filter(|&(_, &c)| c > 0).map(|(b, &c)| (b, c)).collect()
    }

    /// Rebuilds a histogram from sparse `(bucket, count)` pairs — the
    /// inverse of [`nonzero_buckets`](Self::nonzero_buckets).  Returns `None`
    /// when a bucket index is out of range or a count overflows `u64`.
    pub fn from_nonzero_buckets(pairs: &[(usize, u64)]) -> Option<Self> {
        let mut h = StretchHistogram::default();
        for &(b, c) in pairs {
            if b >= Self::BUCKET_COUNT {
                return None;
            }
            h.buckets[b] = h.buckets[b].checked_add(c)?;
            h.count = h.count.checked_add(c)?;
        }
        Some(h)
    }

    /// The `p`-quantile (`0 ≤ p ≤ 1`) of the verified stretch, reported as
    /// the lower edge of its fixed-point bucket (exact to 1/32).
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count as f64 - 1.0) * p).round() as u64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return b as f64 / STRETCH_HISTOGRAM_SCALE as f64;
            }
        }
        STRETCH_BUCKETS as f64 / STRETCH_HISTOGRAM_SCALE as f64
    }
}

/// One verified trip: the request, its measured roundtrip cost, and the
/// oracle's exact roundtrip distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifiedTrip {
    /// Global index of the request in the served stream.
    pub index: usize,
    /// Source of the request.
    pub source: NodeId,
    /// Destination of the request.
    pub destination: NodeId,
    /// Measured roundtrip weight of the served route.
    pub measured: Distance,
    /// Exact roundtrip distance `r(source, destination)`.
    pub exact: Distance,
}

impl VerifiedTrip {
    /// The trip's exact stretch as a float (the underlying comparison is
    /// always integer).
    pub fn stretch(&self) -> f64 {
        self.measured as f64 / self.exact as f64
    }
}

/// True when trip `a`'s stretch is greater than `b`'s, with ties broken
/// toward the smaller request index — a total order, so "worst trip" is
/// schedule-independent.
fn worse(a: &VerifiedTrip, b: &VerifiedTrip) -> bool {
    let left = (a.measured as u128) * (b.exact as u128);
    let right = (b.measured as u128) * (a.exact as u128);
    left > right || (left == right && a.index < b.index)
}

/// The deterministic outcome of a verified serve run: every field depends
/// only on the request stream and the oracle, never on worker count or
/// flush scheduling (asserted bit-for-bit by the conformance suite).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VerifiedReport {
    /// Requests served.
    pub queries: usize,
    /// Requests verified against the oracle (equals `queries` under
    /// [`VerifyMode::Full`]).
    pub checked: usize,
    /// Sum of measured roundtrip weights over checked trips.
    pub total_measured: u128,
    /// Sum of exact roundtrip distances over checked trips.
    pub total_exact: u128,
    /// Exact fixed-point stretch histogram of the checked trips.
    pub histogram: StretchHistogram,
    /// The checked trip with the largest stretch (ties: smallest index).
    pub worst: Option<VerifiedTrip>,
    /// Checked trips exceeding the configured [`StretchBound`], sorted by
    /// request index.  Always empty when no bound was configured.
    pub violations: Vec<VerifiedTrip>,
    /// Per-epoch breakdown of a chaos run (pre-fault / degraded /
    /// post-repair), populated only by [`crate::chaos_report`].  Empty for
    /// every ordinary serve, and **not** part of the wire encoding — the
    /// `rtr-serve` REPORT record carries the flat fields only (see
    /// `docs/PROTOCOL.md`).
    pub epochs: Vec<crate::chaos::EpochReport>,
}

impl VerifiedReport {
    /// Worst verified stretch (0 when nothing was checked).
    pub fn max_stretch(&self) -> f64 {
        self.worst.map(|w| w.stretch()).unwrap_or(0.0)
    }

    /// Ratio of total measured weight to total exact distance — the
    /// traffic-weighted aggregate stretch of the checked stream.
    pub fn aggregate_stretch(&self) -> f64 {
        if self.total_exact == 0 {
            return 0.0;
        }
        self.total_measured as f64 / self.total_exact as f64
    }

    /// True when no checked trip exceeded the configured bound.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    pub(crate) fn merge(&mut self, other: VerifiedReport) {
        self.queries += other.queries;
        self.checked += other.checked;
        self.total_measured += other.total_measured;
        self.total_exact += other.total_exact;
        self.histogram.merge(&other.histogram);
        self.worst = match (self.worst, other.worst) {
            (Some(a), Some(b)) => Some(if worse(&b, &a) { b } else { a }),
            (a, b) => a.or(b),
        };
        self.violations.extend(other.violations);
        self.epochs.extend(other.epochs);
    }
}

/// Schedule-dependent cost counters of one verified run — deliberately kept
/// out of [`VerifiedReport`] (they vary with worker count and flush timing,
/// the report must not).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyCost {
    /// Bucket flushes performed across all workers.
    pub flushes: usize,
    /// Destination roundtrip rows fetched across all flushes (each is two
    /// Dijkstras on a cold lazy oracle; cache hits are cheaper).
    pub row_fetches: usize,
    /// Largest number of trips buffered in any single accumulator (per
    /// worker unsharded, per shard sharded) at any moment — the
    /// verification-memory high-water mark.
    pub peak_pending: usize,
    /// Wall time spent inside flushes, summed over all accumulators — so
    /// with `w` workers flushing concurrently this can exceed the run's
    /// elapsed time by up to a factor of `w`.  `elapsed − flush_wall/w`
    /// estimates the serve-only wall time, which is how the benchmark keeps
    /// its verify-slowdown gate meaningful without serving the stream twice.
    pub flush_wall: Duration,
}

impl VerifyCost {
    pub(crate) fn merge(&mut self, other: VerifyCost) {
        self.flushes += other.flushes;
        self.row_fetches += other.row_fetches;
        self.peak_pending = self.peak_pending.max(other.peak_pending);
        self.flush_wall += other.flush_wall;
    }
}

/// The full outcome of [`crate::Engine::serve_verified`]: the ordinary
/// serving summary, the deterministic verification report, and the
/// schedule-dependent cost counters.
#[derive(Debug, Clone)]
pub struct VerifiedServe {
    /// Throughput/latency accounting of the serving phase (all stretch
    /// accounting lives in [`VerifiedServe::report`]).
    pub summary: crate::ServeSummary,
    /// The deterministic verification outcome.
    pub report: VerifiedReport,
    /// Flush/row cost counters.
    pub cost: VerifyCost,
}

/// Errors of a verified serve run.
#[derive(Debug)]
pub enum VerifyServeError {
    /// A worker hit a simulator error (bad port, TTL, wrong delivery, …).
    Sim(SimError),
    /// Strict mode: at least one checked trip exceeded the configured
    /// stretch bound.  The complete outcome — including the sorted violation
    /// list — rides along for diagnosis.
    BoundExceeded(Box<VerifiedServe>),
    /// [`VerifyServeError::BoundExceeded`] raised by the sharded engine —
    /// the sharded outcome (same report, plus per-shard accounting) rides
    /// along.
    ShardedBoundExceeded(Box<crate::shard::VerifiedShardedServe>),
}

impl VerifyServeError {
    /// The verification report of a bound-exceeded error, whichever engine
    /// raised it (`None` for simulator errors).
    pub fn report(&self) -> Option<&VerifiedReport> {
        match self {
            VerifyServeError::Sim(_) => None,
            VerifyServeError::BoundExceeded(outcome) => Some(&outcome.report),
            VerifyServeError::ShardedBoundExceeded(outcome) => Some(&outcome.report),
        }
    }
}

impl fmt::Display for VerifyServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyServeError::Sim(e) => write!(f, "{e}"),
            VerifyServeError::BoundExceeded(_) | VerifyServeError::ShardedBoundExceeded(_) => {
                let report = self.report().expect("bound errors carry a report");
                write!(
                    f,
                    "{} of {} verified queries exceeded the stretch bound (first: {:?})",
                    report.violations.len(),
                    report.checked,
                    report.violations.first()
                )
            }
        }
    }
}

impl Error for VerifyServeError {}

impl From<SimError> for VerifyServeError {
    fn from(value: SimError) -> Self {
        VerifyServeError::Sim(value)
    }
}

/// One buffered trip awaiting its destination row.
struct PendingTrip {
    index: usize,
    source: NodeId,
    measured: Distance,
}

/// Per-worker verification state: bounded destination buckets plus the
/// worker's private slice of the report.
pub(crate) struct VerifyAccumulator {
    bound: Option<StretchBound>,
    flush_pending: usize,
    buckets: HashMap<u32, Vec<PendingTrip>>,
    pending: usize,
    report: VerifiedReport,
    cost: VerifyCost,
}

impl VerifyAccumulator {
    pub(crate) fn new(config: &VerifyConfig) -> Self {
        VerifyAccumulator {
            bound: config.bound,
            flush_pending: config.flush_pending.max(1),
            buckets: HashMap::new(),
            pending: 0,
            report: VerifiedReport::default(),
            cost: VerifyCost::default(),
        }
    }

    /// Buffers one trip under its destination, flushing the worker's buckets
    /// when the backpressure threshold is reached.
    pub(crate) fn push<O: DistanceOracle + ?Sized>(
        &mut self,
        oracle: &O,
        index: usize,
        req: &Request,
        measured: Distance,
    ) {
        self.buckets.entry(req.dst.0).or_default().push(PendingTrip {
            index,
            source: req.src,
            measured,
        });
        self.pending += 1;
        self.cost.peak_pending = self.cost.peak_pending.max(self.pending);
        if self.pending >= self.flush_pending {
            self.flush(oracle);
        }
    }

    /// Drains every bucket: one shared roundtrip row per distinct
    /// destination, every buffered trip of that destination checked against
    /// it.  Destinations are visited in sorted order so oracle access
    /// patterns are reproducible; the verdicts themselves never depend on
    /// the order.
    pub(crate) fn flush<O: DistanceOracle + ?Sized>(&mut self, oracle: &O) {
        if self.pending == 0 {
            return;
        }
        let checked_before = self.report.checked;
        let started = Instant::now();
        let nodes = self.sorted_destinations();
        roundtrip_rows_batched(oracle, &nodes, |dst, row| self.check_bucket(dst, row));
        let elapsed = started.elapsed();
        self.cost.flushes += 1;
        self.cost.row_fetches += nodes.len();
        self.cost.flush_wall += elapsed;
        self.pending = 0;
        if rtr_telemetry::enabled() {
            rtr_telemetry::counter("verify.flushes").inc();
            rtr_telemetry::counter("verify.row_fetches").add(nodes.len() as u64);
            rtr_telemetry::counter("verify.checked")
                .add((self.report.checked - checked_before) as u64);
            rtr_telemetry::histogram("verify.flush_ns").observe(elapsed);
        }
    }

    /// Drains several accumulators' buckets — one per destination shard of
    /// one sharded worker — through a **single**
    /// [`rtr_metric::roundtrip_rows_sharded`] sweep, so a worker owning many
    /// small shards still fills whole prefetch windows.  Row accounting is
    /// attributed per accumulator; the shared sweep's wall time lands on the
    /// first flushed accumulator (summing per-shard costs then remains
    /// truthful).
    pub(crate) fn flush_sharded<O: DistanceOracle + ?Sized>(
        parts: &mut [&mut VerifyAccumulator],
        oracle: &O,
    ) {
        if parts.iter().all(|p| p.pending == 0) {
            return;
        }
        let telemetry_on = rtr_telemetry::enabled();
        let checked_before: usize =
            if telemetry_on { parts.iter().map(|p| p.report.checked).sum() } else { 0 };
        let started = Instant::now();
        let dest_lists: Vec<Vec<NodeId>> = parts.iter().map(|p| p.sorted_destinations()).collect();
        let slices: Vec<&[NodeId]> = dest_lists.iter().map(|v| v.as_slice()).collect();
        roundtrip_rows_sharded(oracle, &slices, |at, dst, row| parts[at].check_bucket(dst, row));
        let elapsed = started.elapsed();
        let mut wall = Some(elapsed);
        let mut flushes = 0u64;
        let mut rows = 0u64;
        for (part, dests) in parts.iter_mut().zip(&dest_lists) {
            if dests.is_empty() {
                continue;
            }
            part.cost.flushes += 1;
            part.cost.row_fetches += dests.len();
            part.cost.flush_wall += wall.take().unwrap_or_default();
            part.pending = 0;
            flushes += 1;
            rows += dests.len() as u64;
        }
        if telemetry_on {
            let checked_after: usize = parts.iter().map(|p| p.report.checked).sum();
            rtr_telemetry::counter("verify.flushes").add(flushes);
            rtr_telemetry::counter("verify.row_fetches").add(rows);
            rtr_telemetry::counter("verify.checked").add((checked_after - checked_before) as u64);
            rtr_telemetry::histogram("verify.flush_ns").observe(elapsed);
        }
    }

    /// The distinct buffered destinations, ascending — visited in sorted
    /// order so oracle access patterns are reproducible; the verdicts
    /// themselves never depend on the order.
    fn sorted_destinations(&self) -> Vec<NodeId> {
        let mut dests: Vec<u32> = self.buckets.keys().copied().collect();
        dests.sort_unstable();
        dests.into_iter().map(NodeId).collect()
    }

    /// Checks every trip buffered under `dst` against the destination's
    /// shared roundtrip row and folds the verdicts into the report.
    fn check_bucket(&mut self, dst: NodeId, row: &[Distance]) {
        let trips = self.buckets.remove(&dst.0).expect("bucket exists for its key");
        for trip in trips {
            let exact = row[trip.source.index()];
            assert!(
                exact > 0 && exact != INFINITY,
                "verified pair ({}, {dst}) is unreachable or degenerate",
                trip.source
            );
            let verified = VerifiedTrip {
                index: trip.index,
                source: trip.source,
                destination: dst,
                measured: trip.measured,
                exact,
            };
            self.report.checked += 1;
            self.report.total_measured += u128::from(trip.measured);
            self.report.total_exact += u128::from(exact);
            self.report.histogram.record(trip.measured, exact);
            match &self.report.worst {
                Some(w) if !worse(&verified, w) => {}
                _ => self.report.worst = Some(verified),
            }
            if self.bound.is_some_and(|b| b.exceeded_by(trip.measured, exact)) {
                self.report.violations.push(verified);
            }
        }
    }

    /// Merges the per-worker accumulators into the final `(report, cost)`
    /// pair, sorting violations by request index.
    pub(crate) fn merge_all(
        parts: impl IntoIterator<Item = VerifyAccumulator>,
        queries: usize,
    ) -> (VerifiedReport, VerifyCost) {
        let mut report = VerifiedReport::default();
        let mut cost = VerifyCost::default();
        for part in parts {
            debug_assert_eq!(part.pending, 0, "worker finished with unflushed trips");
            report.merge(part.report);
            cost.merge(part.cost);
        }
        report.queries = queries;
        report.violations.sort_by_key(|v| v.index);
        (report, cost)
    }
}

/// The sequential oracle-checked replay: serves every request through a
/// fresh [`rtr_sim::Simulator`] one by one
/// ([`rtr_sim::Simulator::roundtrip_cost`], the very trip-cost path the
/// engine's workers drive) and verifies each cost against `oracle` directly
/// — no batching, no buckets, no threads.
///
/// This is the ground truth of the verification plane: the differential
/// test-suite asserts [`crate::Engine::serve_verified`] reproduces this
/// report **bit for bit** for every worker count.
///
/// # Errors
///
/// The first [`SimError`] any request raises.
pub fn verify_sequential<S, O>(
    plane: &FrozenPlane<S>,
    requests: &[Request],
    oracle: &O,
    config: &VerifyConfig,
) -> Result<VerifiedReport, SimError>
where
    S: RoundtripRouting,
    O: DistanceOracle + ?Sized,
{
    let sim = plane.simulator();
    let mut acc = VerifyAccumulator::new(config);
    for (index, req) in requests.iter().enumerate() {
        let measured =
            sim.roundtrip_cost(plane.scheme(), req.src, req.dst, plane.name_of(req.dst))?;
        if config.mode.checks(index) {
            // Verify immediately: a one-trip "bucket" through the same
            // exact-row comparison the batched path performs.
            acc.push(oracle, index, req, measured);
            acc.flush(oracle);
        }
    }
    let (report, _) = VerifyAccumulator::merge_all([acc], requests.len());
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::tests::ring_plane;
    use crate::workload::Workload;
    use crate::{Engine, EngineConfig};
    use rtr_metric::DistanceMatrix;

    #[test]
    fn full_mode_checks_everything_and_matches_the_ring_metric() {
        let plane = ring_plane(10);
        let m = DistanceMatrix::build(plane.graph());
        let requests = Workload::Uniform.generate(10, 500, 3);
        let engine = Engine::new(EngineConfig::with_workers(3));
        let config = VerifyConfig::full().with_bound(StretchBound::at_most(1));
        let outcome = engine.serve_verified(&plane, &requests, &m, &config).unwrap();
        // The ring scheme routes optimally (the ring is the only route), so
        // every trip has stretch exactly 1 and the bound 1 is never exceeded.
        assert_eq!(outcome.report.queries, 500);
        assert_eq!(outcome.report.checked, 500);
        assert!(outcome.report.is_clean());
        assert_eq!(outcome.report.total_measured, outcome.report.total_exact);
        assert!((outcome.report.max_stretch() - 1.0).abs() < 1e-12);
        assert!((outcome.report.histogram.percentile(0.99) - 1.0).abs() < 1e-12);
        assert!(outcome.cost.flushes >= 1);
        assert!(outcome.cost.flush_wall <= outcome.summary.elapsed * 3);
    }

    #[test]
    fn sampled_and_off_modes_check_the_strided_subset() {
        let plane = ring_plane(8);
        let m = DistanceMatrix::build(plane.graph());
        let requests = Workload::Mix.generate(8, 300, 9);
        let engine = Engine::default();
        let sampled =
            engine.serve_verified(&plane, &requests, &m, &VerifyConfig::sampled(7)).unwrap();
        assert_eq!(sampled.report.checked, requests.len().div_ceil(7));
        let off = engine.serve_verified(&plane, &requests, &m, &VerifyConfig::off()).unwrap();
        assert_eq!(off.report.checked, 0);
        assert_eq!(off.report.queries, 300);
        assert_eq!(off.cost.row_fetches, 0);
    }

    #[test]
    fn strict_mode_fails_on_a_violated_bound() {
        let plane = ring_plane(12);
        let m = DistanceMatrix::build(plane.graph());
        let requests = Workload::Uniform.generate(12, 200, 5);
        let engine = Engine::new(EngineConfig::with_workers(2));

        // An impossible ceiling (stretch < 1/2) flags every trip.
        let config = VerifyConfig::full().with_bound(StretchBound { num: 1, den: 2 });
        let err = engine.serve_verified(&plane, &requests, &m, &config).unwrap_err();
        let VerifyServeError::BoundExceeded(outcome) = err else {
            panic!("expected BoundExceeded");
        };
        assert_eq!(outcome.report.violations.len(), 200);
        // Violations are sorted by global request index.
        let indices: Vec<usize> = outcome.report.violations.iter().map(|v| v.index).collect();
        assert_eq!(indices, (0..200).collect::<Vec<_>>());

        // The same run in non-strict mode returns the report for inspection.
        let lax = VerifyConfig { strict: false, ..config };
        let outcome = engine.serve_verified(&plane, &requests, &m, &lax).unwrap();
        assert_eq!(outcome.report.violations.len(), 200);
    }

    #[test]
    fn tiny_flush_threshold_changes_cost_but_not_the_report() {
        let plane = ring_plane(9);
        let m = DistanceMatrix::build(plane.graph());
        let requests = Workload::Zipf { exponent: 1.2 }.generate(9, 400, 11);
        let engine = Engine::new(EngineConfig::with_workers(2));
        let roomy = engine.serve_verified(&plane, &requests, &m, &VerifyConfig::full()).unwrap();
        let tight = VerifyConfig { flush_pending: 3, ..VerifyConfig::full() };
        let tight = engine.serve_verified(&plane, &requests, &m, &tight).unwrap();
        assert_eq!(roomy.report, tight.report);
        assert!(tight.cost.flushes > roomy.cost.flushes);
        assert!(tight.cost.peak_pending <= 3);
    }

    #[test]
    fn histogram_buckets_are_exact_integer_arithmetic() {
        let mut h = StretchHistogram::default();
        h.record(10, 10); // stretch 1.0 → bucket 32
        h.record(15, 10); // stretch 1.5 → bucket 48
        h.record(10_000, 10); // stretch 1000 → overflow
        assert_eq!(h.count(), 3);
        assert!((h.percentile(0.0) - 1.0).abs() < 1e-12);
        assert!((h.percentile(0.5) - 1.5).abs() < 1e-12);
        assert!((h.percentile(1.0) - 64.0).abs() < 1e-12);
    }

    #[test]
    fn worst_ordering_is_total() {
        let trip = |index, measured, exact| VerifiedTrip {
            index,
            source: NodeId(0),
            destination: NodeId(1),
            measured,
            exact,
        };
        assert!(worse(&trip(5, 3, 2), &trip(1, 4, 3))); // 9/6 > 8/6
        assert!(!worse(&trip(1, 4, 3), &trip(5, 3, 2)));
        // Equal stretch: the smaller index wins.
        assert!(worse(&trip(1, 6, 4), &trip(5, 3, 2)));
        assert!(!worse(&trip(5, 3, 2), &trip(1, 6, 4)));
    }
}
