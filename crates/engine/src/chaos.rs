//! Degraded serving through a fault window: the chaos plane's epochs.
//!
//! A chaos run serves three request streams over the same node space —
//! **pre-fault** (the healthy substrate), **degraded** (the old scheme still
//! serving after a [`rtr_graph::FaultPlan`] mutated the graph), and
//! **post-repair** (schemes minted from the incrementally repaired
//! substrate).  The ordinary engine entry points abort on the first
//! [`rtr_sim::SimError`]; through a fault window that is exactly wrong — a
//! route crossing a removed link *is the measurement*.  So
//! [`Engine::serve_epoch_sharded`] keeps [`crate::VerifyMode::Full`]
//! verification running while tolerating per-request failures: every failed
//! request is recorded as a [`FailedPair`] (deterministically, sorted by
//! global request index) and every delivered request is verified against the
//! post-fault oracle as usual.
//!
//! [`chaos_report`] then assembles the three epochs into one
//! [`VerifiedReport`] whose [`VerifiedReport::epochs`] breakdown lists, per
//! epoch, exactly which pairs exceeded the proven stretch ceiling or failed
//! outright — and, on the post-repair epoch, which of the degraded window's
//! offenders the repair restored.

use crate::shard::{ShardServeStats, ShardedPlane};
use crate::stats::{ServeSummary, WorkerStats};
use crate::verify::{VerifiedReport, VerifyAccumulator, VerifyConfig, VerifyCost};
use crate::workload::Request;
use crate::Engine;
use rtr_graph::NodeId;
use rtr_metric::DistanceOracle;
use rtr_sim::RoundtripRouting;
use std::time::Instant;

/// Which phase of a chaos run an [`EpochReport`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochKind {
    /// The healthy substrate, before any fault was injected.
    PreFault,
    /// The fault window: the pre-fault scheme serving over the mutated
    /// graph.  Routes crossing a removed link fail; surviving routes may
    /// exceed the proven ceiling.
    Degraded,
    /// After incremental repair: schemes minted from the repaired substrate
    /// serving over the mutated graph.
    PostRepair,
}

impl EpochKind {
    /// Short stable name used in the chaos baseline artifact
    /// (`pre_fault` | `degraded` | `post_repair`).
    pub fn name(self) -> &'static str {
        match self {
            EpochKind::PreFault => "pre_fault",
            EpochKind::Degraded => "degraded",
            EpochKind::PostRepair => "post_repair",
        }
    }
}

/// One request the scheme failed to deliver during an epoch (typically a
/// route that tried to cross a removed link).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailedPair {
    /// Global index of the request in the epoch's stream.
    pub index: usize,
    /// Source of the request.
    pub source: NodeId,
    /// Destination of the request.
    pub destination: NodeId,
}

/// One epoch of a chaos run: the verified outcome of its stream plus the
/// delivery failures the tolerant serve recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochReport {
    /// Which phase of the run this is.
    pub kind: EpochKind,
    /// The deterministic verified outcome of the epoch's delivered requests
    /// ([`VerifiedReport::violations`] lists the pairs that exceeded the
    /// proven ceiling).  Its own `epochs` field is always empty.
    pub report: VerifiedReport,
    /// Requests the scheme failed to deliver, sorted by request index.
    pub failed_pairs: Vec<FailedPair>,
    /// Only on [`EpochKind::PostRepair`]: the `(source, destination)` pairs
    /// that violated the ceiling or failed outright during the degraded
    /// window and are clean in this epoch — the pairs repair restored.
    /// Sorted, deduplicated.
    pub restored: Vec<(NodeId, NodeId)>,
}

impl EpochReport {
    /// Requests the scheme failed to deliver in this epoch.
    pub fn failed(&self) -> usize {
        self.failed_pairs.len()
    }

    /// Every `(source, destination)` pair that exceeded the proven ceiling
    /// or failed to deliver in this epoch — sorted, deduplicated.
    pub fn offending_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut pairs: Vec<(NodeId, NodeId)> = self
            .report
            .violations
            .iter()
            .map(|t| (t.source, t.destination))
            .chain(self.failed_pairs.iter().map(|f| (f.source, f.destination)))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// True when every delivered request respected the ceiling and nothing
    /// failed to deliver.
    pub fn is_clean(&self) -> bool {
        self.report.is_clean() && self.failed_pairs.is_empty()
    }
}

/// The outcome of one tolerant [`Engine::serve_epoch_sharded`] run.
#[derive(Debug, Clone)]
pub struct EpochServe {
    /// Aggregate throughput/latency accounting over the **delivered**
    /// requests, merged over all shards.
    pub summary: ServeSummary,
    /// The deterministic verification outcome of the delivered requests —
    /// bit-identical for any shard × worker count.
    pub report: VerifiedReport,
    /// Flush/row cost counters, summed over all shards.
    pub cost: VerifyCost,
    /// Per-shard accounting, sorted by shard id.
    pub shards: Vec<ShardServeStats>,
    /// Requests the scheme failed to deliver, sorted by request index —
    /// a pure function of the stream and the plane, never of scheduling.
    pub failed_pairs: Vec<FailedPair>,
}

impl EpochServe {
    /// Requests the scheme failed to deliver.
    pub fn failed(&self) -> usize {
        self.failed_pairs.len()
    }
}

impl Engine {
    /// [`serve_verified_sharded`](Engine::serve_verified_sharded) that
    /// **keeps serving through delivery failures** — the chaos plane's
    /// degraded mode.
    ///
    /// Each request is served once; on a [`rtr_sim::SimError`] the request
    /// is recorded as a [`FailedPair`] instead of aborting the pool, and on
    /// success it is verified against `oracle` exactly as the strict engine
    /// would (same per-shard destination buckets, same flush discipline, so
    /// the [`VerifiedReport`] stays bit-identical for any shard × worker
    /// count).  [`VerifyConfig::strict`] is ignored: violations are
    /// *reported*, never turned into an error — gating is the caller's job
    /// ([`chaos_report`] + the chaos baseline checker).
    ///
    /// The oracle must be consistent with the plane's graph: on a mutated
    /// graph pass the post-fault (rebased) oracle, and keep the graph
    /// strongly connected — verification asserts every checked pair has a
    /// finite exact roundtrip.
    pub fn serve_epoch_sharded<S, O>(
        &self,
        plane: &ShardedPlane<S>,
        requests: &[Request],
        oracle: &O,
        verify: &VerifyConfig,
    ) -> EpochServe
    where
        S: RoundtripRouting + Send + Sync,
        O: DistanceOracle + ?Sized,
    {
        let workers = self.config().workers.max(1);
        let mode = verify.mode;
        let started = Instant::now();
        type EpochAcc = (WorkerStats, VerifyAccumulator, Vec<FailedPair>);
        let per_shard = self
            .run_sharded_pool(
                plane,
                requests,
                |_shard| -> EpochAcc {
                    (WorkerStats::new(), VerifyAccumulator::new(verify), Vec::new())
                },
                |sim, plane, index, req, (stats, acc, failed): &mut EpochAcc| {
                    match sim.roundtrip_brief(
                        plane.scheme(),
                        req.src,
                        req.dst,
                        plane.name_of(req.dst),
                    ) {
                        Ok(brief) => {
                            stats.record(&brief);
                            if mode.checks(index) {
                                acc.push(oracle, index, req, brief.total_weight());
                            }
                        }
                        Err(_) => {
                            failed.push(FailedPair { index, source: req.src, destination: req.dst })
                        }
                    }
                    Ok(())
                },
                |owned| {
                    let mut parts: Vec<&mut VerifyAccumulator> =
                        owned.iter_mut().map(|(_, _, (_, acc, _))| acc).collect();
                    VerifyAccumulator::flush_sharded(&mut parts, oracle);
                    Ok(())
                },
            )
            .expect("the tolerant epoch serve never raises a simulator error");
        let mut merged = WorkerStats::new();
        let mut shards = Vec::with_capacity(per_shard.len());
        let mut accs = Vec::with_capacity(per_shard.len());
        let mut failed_pairs = Vec::new();
        for (shard, handoffs, (stats, acc, failed)) in per_shard {
            shards.push(ShardServeStats { shard, queries: stats.queries as u64, handoffs });
            merged.merge(stats);
            accs.push(acc);
            failed_pairs.extend(failed);
        }
        shards.sort_by_key(|s| s.shard);
        failed_pairs.sort_unstable_by_key(|f| f.index);
        rtr_telemetry::counter("engine.handoffs").add(shards.iter().map(|s| s.handoffs).sum());
        let queries = merged.queries;
        let summary = ServeSummary::from_stats(merged, workers, started.elapsed());
        let (report, cost) = VerifyAccumulator::merge_all(accs, queries);
        EpochServe { summary, report, cost, shards, failed_pairs }
    }
}

/// Assembles a chaos run's three epochs into one [`VerifiedReport`].
///
/// The returned report is the merge of the three epoch reports (queries,
/// histogram, worst trip and violations accumulate; violations keep epoch
/// order, each epoch's slice sorted by its own request index), and its
/// [`VerifiedReport::epochs`] holds the per-epoch breakdown: the pairs that
/// exceeded the ceiling or failed per epoch, and — on the post-repair entry
/// — [`EpochReport::restored`], the degraded window's offenders that the
/// repair brought back under the ceiling.
pub fn chaos_report(pre: &EpochServe, degraded: &EpochServe, post: &EpochServe) -> VerifiedReport {
    let make = |kind: EpochKind, serve: &EpochServe| EpochReport {
        kind,
        report: serve.report.clone(),
        failed_pairs: serve.failed_pairs.clone(),
        restored: Vec::new(),
    };
    let pre_epoch = make(EpochKind::PreFault, pre);
    let degraded_epoch = make(EpochKind::Degraded, degraded);
    let mut post_epoch = make(EpochKind::PostRepair, post);
    let still_bad = post_epoch.offending_pairs();
    post_epoch.restored = degraded_epoch
        .offending_pairs()
        .into_iter()
        .filter(|p| still_bad.binary_search(p).is_err())
        .collect();

    let mut total = pre.report.clone();
    total.merge(degraded.report.clone());
    total.merge(post.report.clone());
    total.epochs = vec![pre_epoch, degraded_epoch, post_epoch];
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::tests::ring_plane;
    use crate::workload::Workload;
    use crate::{EngineConfig, ShardMap, StretchBound};
    use rtr_metric::CachedSubsetOracle;
    use std::sync::Arc;

    #[test]
    fn healthy_epoch_matches_the_strict_engine_bit_for_bit() {
        let plane = ring_plane(10);
        let oracle = CachedSubsetOracle::new(plane.graph());
        let requests = Workload::Mix.generate(10, 400, 5);
        let config = VerifyConfig::full().with_bound(StretchBound::at_most(6));
        let engine = Engine::new(EngineConfig::with_workers(2));
        let sharded = ShardedPlane::new(plane.clone(), ShardMap::hashed(10, 3, 7));
        let strict = engine.serve_verified_sharded(&sharded, &requests, &oracle, &config).unwrap();
        let tolerant = engine.serve_epoch_sharded(&sharded, &requests, &oracle, &config);
        assert_eq!(tolerant.report, strict.report);
        assert!(tolerant.failed_pairs.is_empty());
        assert_eq!(tolerant.shards.len(), 3);
    }

    #[test]
    fn failed_pairs_are_deterministic_across_workers_and_policies() {
        // Removing one ring edge makes *every* roundtrip fail (a directed
        // ring's roundtrip traverses the whole cycle), so the old scheme
        // over the mutated graph fails every request — deterministically.
        let plane = ring_plane(8);
        let mut g = plane.graph().clone();
        assert!(g.remove_edge(rtr_graph::NodeId(3), rtr_graph::NodeId(4)).is_some());
        let degraded = plane.clone().with_graph(Arc::new(g));
        let requests = Workload::Uniform.generate(8, 300, 11);
        let config = VerifyConfig::full();
        let mut outcomes = Vec::new();
        for workers in [1usize, 2, 8] {
            for map in [ShardMap::hashed(8, 4, 3), ShardMap::range(8, 4)] {
                let engine = Engine::new(EngineConfig::with_workers(workers));
                let sharded = ShardedPlane::new(degraded.clone(), map);
                // No row is ever fetched (nothing succeeds), so the
                // pre-fault oracle is safe to pass here.
                let oracle = CachedSubsetOracle::new(plane.graph());
                let outcome = engine.serve_epoch_sharded(&sharded, &requests, &oracle, &config);
                assert_eq!(outcome.failed(), 300);
                assert_eq!(outcome.report.queries, 0);
                outcomes.push(outcome.failed_pairs);
            }
        }
        for pairs in &outcomes[1..] {
            assert_eq!(pairs, &outcomes[0]);
        }
    }

    #[test]
    fn chaos_report_restores_the_degraded_offenders() {
        let plane = ring_plane(6);
        let oracle = CachedSubsetOracle::new(plane.graph());
        let requests = Workload::Mix.generate(6, 120, 3);
        let config = VerifyConfig::full().with_bound(StretchBound::at_most(6));
        let engine = Engine::new(EngineConfig::with_workers(2));
        let healthy = ShardedPlane::new(plane.clone(), ShardMap::single(6));
        let pre = engine.serve_epoch_sharded(&healthy, &requests, &oracle, &config);

        let mut g = plane.graph().clone();
        g.remove_edge(rtr_graph::NodeId(0), rtr_graph::NodeId(1)).unwrap();
        let window = ShardedPlane::new(plane.clone().with_graph(Arc::new(g)), ShardMap::single(6));
        let mid = engine.serve_epoch_sharded(&window, &requests, &oracle, &config);
        // "Repair" here is the original plane serving again.
        let post = engine.serve_epoch_sharded(&healthy, &requests, &oracle, &config);

        let report = chaos_report(&pre, &mid, &post);
        assert_eq!(report.epochs.len(), 3);
        assert_eq!(report.epochs[0].kind, EpochKind::PreFault);
        assert!(report.epochs[0].is_clean());
        assert_eq!(report.epochs[1].kind, EpochKind::Degraded);
        assert_eq!(report.epochs[1].failed(), 120);
        assert_eq!(report.epochs[2].kind, EpochKind::PostRepair);
        assert!(report.epochs[2].is_clean());
        // Every offending pair of the window is restored post-repair.
        assert_eq!(report.epochs[2].restored, report.epochs[1].offending_pairs());
        assert_eq!(report.queries, pre.report.queries + post.report.queries);
    }
}
