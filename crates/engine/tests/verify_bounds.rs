//! The verification plane must actually *enforce* the proven stretch
//! ceilings: a corrupted distance-table entry — injected through a test-only
//! oracle hook that deflates one pair's roundtrip row entries — makes every
//! request on that pair appear to exceed the scheme's bound, and the
//! verifier must report **exactly** those queries (and only those), for each
//! of the three schemes.

use proptest::prelude::*;
use rtr_core::naming::NamingAssignment;
use rtr_core::{SchemeSuite, SuiteParams};
use rtr_engine::{
    Engine, EngineConfig, FrozenPlane, Request, StretchBound, VerifyConfig, VerifyServeError,
    Workload,
};
use rtr_graph::generators::strongly_connected_gnp;
use rtr_graph::{DiGraph, DiGraphBuilder, Distance, NodeId};
use rtr_metric::{DistanceMatrix, DistanceOracle};
use rtr_sim::RoundtripRouting;
use std::sync::Arc;

/// Rebuilds `g` with every edge weight multiplied by `factor` (ports
/// preserved: edges are re-inserted in port order).  Large weights keep the
/// deflated corrupted entries well away from the `max(…, 1)` clamp, so a
/// corrupted query *always* reads as a bound violation.
fn scale_weights(g: &DiGraph, factor: u64) -> DiGraph {
    let mut b = DiGraphBuilder::new(g.node_count());
    for v in g.nodes() {
        for e in g.out_edges(v) {
            b.add_edge(v, e.to, e.weight * factor).unwrap();
        }
    }
    b.build().unwrap()
}

/// Test-only corruption hook: delegates every query to the inner dense
/// oracle but deflates the roundtrip distance of one unordered pair
/// (`r(u, v) = r(v, u)`, so both orientations are corrupted) far enough
/// below the scheme's ceiling that any real route over it must read as a
/// violation.  Only the roundtrip entries are touched — exactly "one
/// corrupted table entry", everything else bit-identical.
#[derive(Debug)]
struct CorruptedEntry<'a> {
    inner: &'a DistanceMatrix,
    a: NodeId,
    b: NodeId,
    /// Deflation divisor: `corrupt(r) = max(1, r / divisor)`.
    divisor: u64,
}

impl CorruptedEntry<'_> {
    fn is_victim(&self, u: NodeId, v: NodeId) -> bool {
        (u, v) == (self.a, self.b) || (u, v) == (self.b, self.a)
    }

    fn corrupt(&self, r: Distance) -> Distance {
        (r / self.divisor).max(1)
    }
}

impl DistanceOracle for CorruptedEntry<'_> {
    fn node_count(&self) -> usize {
        DistanceOracle::node_count(self.inner)
    }

    fn distance(&self, u: NodeId, v: NodeId) -> Distance {
        DistanceOracle::distance(self.inner, u, v)
    }

    fn roundtrip(&self, u: NodeId, v: NodeId) -> Distance {
        let r = DistanceOracle::roundtrip(self.inner, u, v);
        if self.is_victim(u, v) {
            self.corrupt(r)
        } else {
            r
        }
    }

    fn row(&self, u: NodeId) -> Vec<Distance> {
        DistanceOracle::row(self.inner, u)
    }

    fn rev_row(&self, u: NodeId) -> Vec<Distance> {
        DistanceOracle::rev_row(self.inner, u)
    }

    fn roundtrip_row(&self, u: NodeId) -> Vec<Distance> {
        let mut row = DistanceOracle::roundtrip_row(self.inner, u);
        let other = if u == self.a {
            Some(self.b)
        } else if u == self.b {
            Some(self.a)
        } else {
            None
        };
        if let Some(v) = other {
            row[v.index()] = self.corrupt(row[v.index()]);
        }
        row
    }
}

/// Serves `requests` over `plane` with full verification against the
/// corrupted oracle and asserts the violation list is exactly the requests
/// on the victim pair.
fn check_detects_exactly_the_corrupted_queries<S: RoundtripRouting + Send + Sync>(
    plane: &FrozenPlane<S>,
    requests: &[Request],
    clean: &DistanceMatrix,
    corrupted: &CorruptedEntry<'_>,
    bound: u64,
    label: &str,
) {
    let engine = Engine::new(EngineConfig::with_workers(3));
    let strict = VerifyConfig::full().with_bound(StretchBound::at_most(bound));

    // Against the clean oracle the proven ceiling holds for the full stream.
    let outcome = engine
        .serve_verified(plane, requests, clean, &strict)
        .unwrap_or_else(|e| panic!("{label}: clean run failed: {e}"));
    assert!(outcome.report.is_clean());
    assert_eq!(outcome.report.checked, requests.len());

    // Strict mode hard-fails on the corrupted oracle…
    let err = engine.serve_verified(plane, requests, corrupted, &strict).unwrap_err();
    let VerifyServeError::BoundExceeded(outcome) = err else {
        panic!("{label}: expected BoundExceeded, got a sim error");
    };

    // …and the report names exactly the corrupted queries, in index order.
    let expected: Vec<usize> = requests
        .iter()
        .enumerate()
        .filter(|(_, r)| corrupted.is_victim(r.src, r.dst))
        .map(|(i, _)| i)
        .collect();
    assert!(!expected.is_empty(), "{label}: the victim pair never occurs in the stream");
    let flagged: Vec<usize> = outcome.report.violations.iter().map(|v| v.index).collect();
    assert_eq!(flagged, expected, "{label}: flagged set differs from the corrupted set");
    for v in &outcome.report.violations {
        assert!(corrupted.is_victim(v.source, v.destination), "{label}: non-victim flagged");
        assert_eq!(
            v.exact,
            corrupted.corrupt(clean.roundtrip(v.source, v.destination)),
            "{label}: violation carries the corrupted entry"
        );
        assert!(StretchBound::at_most(bound).exceeded_by(v.measured, v.exact), "{label}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn verifier_reports_exactly_the_corrupted_queries(seed in 0u64..500) {
        let n = 20 + (seed as usize % 5);
        // ×1000 weights keep deflated entries clear of the 1-clamp for every
        // bound below (roundtrips are ≥ 2000, ceilings are ≤ a few hundred).
        let g = Arc::new(scale_weights(&strongly_connected_gnp(n, 0.15, seed).unwrap(), 1000));
        let dense = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(n, seed ^ 0xc0de);
        let suite = SchemeSuite::build(&g, &dense, &names, SuiteParams::default());

        let ex_bound = suite.exstretch.paper_stretch_bound().unwrap();
        let poly_bound = suite.poly.paper_stretch_bound();
        let (stretch6, exstretch, poly) = suite.into_parts();
        let frozen_names = Arc::new(names.to_names());

        let requests = Workload::Mix.generate(n, 160, seed.wrapping_mul(13));
        // The victim pair is drawn from the stream itself, so it occurs at
        // least once; deflation divides by 2·bound, leaving apparent stretch
        // ≥ 2·bound > bound on every corrupted query.
        let victim = requests[seed as usize % requests.len()];

        let corrupted_for = |bound: u64| CorruptedEntry {
            inner: &dense,
            a: victim.src,
            b: victim.dst,
            divisor: 2 * bound,
        };

        let plane6 = FrozenPlane::freeze(Arc::clone(&g), stretch6, Arc::clone(&frozen_names));
        check_detects_exactly_the_corrupted_queries(
            &plane6, &requests, &dense, &corrupted_for(6), 6, "stretch6",
        );
        let planex = FrozenPlane::freeze(Arc::clone(&g), exstretch, Arc::clone(&frozen_names));
        check_detects_exactly_the_corrupted_queries(
            &planex, &requests, &dense, &corrupted_for(ex_bound), ex_bound, "exstretch",
        );
        let planep = FrozenPlane::freeze(Arc::clone(&g), poly, Arc::clone(&frozen_names));
        check_detects_exactly_the_corrupted_queries(
            &planep, &requests, &dense, &corrupted_for(poly_bound), poly_bound, "polystretch",
        );
    }
}
