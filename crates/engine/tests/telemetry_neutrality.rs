//! Telemetry neutrality: the observability plane must never change what the
//! engine computes.  [`rtr_engine::VerifiedReport`] and the deterministic
//! parts of the sharded outcome (per-shard query counts, summary aggregates)
//! are asserted **bit-identical** with the telemetry sink enabled vs. the
//! runtime no-op sink, for every scheme × worker count × shard layout.
//!
//! One `#[test]` function on purpose: `rtr_telemetry::set_enabled` flips a
//! process-global flag, so the toggling must stay sequential.  Integration
//! test binaries are separate processes, which keeps this isolated from every
//! other test.

use rtr_core::naming::NamingAssignment;
use rtr_core::{SchemeSuite, SuiteParams};
use rtr_engine::{
    Engine, EngineConfig, FrozenPlane, ShardMap, ShardedPlane, StretchBound, VerifiedServe,
    VerifiedShardedServe, VerifyConfig, Workload,
};
use rtr_graph::generators::strongly_connected_gnp;
use rtr_metric::{DistanceMatrix, LazyDijkstraOracle};
use rtr_sim::RoundtripRouting;
use std::sync::Arc;

/// Runs `f` once with the sink enabled and once with the runtime no-op sink,
/// returning both outcomes (sink restored to enabled afterwards).
fn with_and_without_telemetry<T>(mut f: impl FnMut() -> T) -> (T, T) {
    rtr_telemetry::set_enabled(true);
    let on = f();
    rtr_telemetry::set_enabled(false);
    let off = f();
    rtr_telemetry::set_enabled(true);
    (on, off)
}

/// The schedule-independent fields of a [`rtr_engine::ServeSummary`].
fn summary_key(s: &rtr_engine::ServeSummary) -> (usize, u64, u128, usize, (usize, usize, usize)) {
    (s.queries, s.total_hops, s.total_weight, s.max_header_bits, s.hop_latency())
}

fn check_plane<S: RoundtripRouting + Send + Sync>(
    plane: &FrozenPlane<S>,
    requests: &[rtr_engine::Request],
    oracle: &LazyDijkstraOracle<'_>,
    bound: StretchBound,
    label: &str,
) {
    let config = VerifyConfig::full().with_bound(bound);
    for workers in [1usize, 2, 8] {
        let engine = Engine::new(EngineConfig::with_workers(workers));

        // Unsharded verified serve: the report is bit-identical and the
        // summary aggregates match.
        let (on, off): (VerifiedServe, VerifiedServe) = with_and_without_telemetry(|| {
            engine
                .serve_verified(plane, requests, oracle, &config)
                .unwrap_or_else(|e| panic!("{label}({workers}): {e}"))
        });
        assert_eq!(on.report, off.report, "{label}({workers}): telemetry changed the report");
        assert_eq!(
            summary_key(&on.summary),
            summary_key(&off.summary),
            "{label}({workers}): telemetry changed the summary aggregates"
        );

        // Sharded verified serve: report, per-shard query counts, and
        // summary aggregates are all telemetry-blind.  (Handoff counts and
        // wall times are schedule-dependent and excluded by design.)
        for shards in [1usize, 2, 4] {
            for map in [
                ShardMap::hashed(plane.node_count(), shards, 0xA11CE),
                ShardMap::range(plane.node_count(), shards),
            ] {
                let policy = map.policy().name();
                let sharded = ShardedPlane::new(plane.clone(), map);
                let (on, off): (VerifiedShardedServe, VerifiedShardedServe) =
                    with_and_without_telemetry(|| {
                        engine
                            .serve_verified_sharded(&sharded, requests, oracle, &config)
                            .unwrap_or_else(|e| panic!("{label}/{policy}×{shards}({workers}): {e}"))
                    });
                assert_eq!(
                    on.report, off.report,
                    "{label}/{policy}×{shards}({workers}): telemetry changed the sharded report"
                );
                let queries = |o: &VerifiedShardedServe| {
                    o.shards.iter().map(|s| (s.shard, s.queries)).collect::<Vec<_>>()
                };
                assert_eq!(
                    queries(&on),
                    queries(&off),
                    "{label}/{policy}×{shards}({workers}): telemetry changed shard queries"
                );
                assert_eq!(
                    summary_key(&on.summary),
                    summary_key(&off.summary),
                    "{label}/{policy}×{shards}({workers}): telemetry changed the aggregates"
                );
            }
        }
    }
}

#[test]
fn reports_are_bit_identical_with_telemetry_on_and_off() {
    let n = 26;
    let g = Arc::new(strongly_connected_gnp(n, 0.14, 42).unwrap());
    let dense = DistanceMatrix::build(&g);
    let lazy = LazyDijkstraOracle::new(&g, 6);
    let names = NamingAssignment::random(n, 0x7e57);
    let suite = SchemeSuite::build(&g, &dense, &names, SuiteParams::default());

    let ex_bound = suite.exstretch.paper_stretch_bound().unwrap();
    let poly_bound = suite.poly.paper_stretch_bound();
    let (stretch6, exstretch, poly) = suite.into_parts();
    let frozen_names = Arc::new(names.to_names());

    let plane6 = FrozenPlane::freeze(Arc::clone(&g), stretch6, Arc::clone(&frozen_names));
    let planex = FrozenPlane::freeze(Arc::clone(&g), exstretch, Arc::clone(&frozen_names));
    let planep = FrozenPlane::freeze(Arc::clone(&g), poly, Arc::clone(&frozen_names));

    let requests = Workload::Mix.generate(n, 160, 99);
    check_plane(&plane6, &requests, &lazy, StretchBound::at_most(6), "stretch6");
    check_plane(&planex, &requests, &lazy, StretchBound::at_most(ex_bound), "exstretch");
    check_plane(&planep, &requests, &lazy, StretchBound::at_most(poly_bound), "polystretch");
}
