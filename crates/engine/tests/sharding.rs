//! Shard-handoff edge cases: degenerate shard maps and hostile
//! configurations must neither lose requests nor perturb the verified
//! report.
//!
//! * one shard ≡ the unsharded engine, aggregate for aggregate;
//! * far more shards than workers (including empty shards) still covers
//!   every request exactly once;
//! * a hotspot stream lands entirely on the destination's owner shard;
//! * a capacity-1 handoff queue under full verification and tiny flush
//!   windows still reproduces the sequential oracle-checked replay.

use rtr_core::naming::NamingAssignment;
use rtr_core::{Stretch6Params, StretchSix};
use rtr_engine::{
    verify_sequential, Engine, EngineConfig, FrozenPlane, ShardMap, ShardedPlane, StretchBound,
    VerifyConfig, Workload,
};
use rtr_graph::generators::strongly_connected_gnp;
use rtr_metric::DistanceMatrix;
use rtr_namedep::ExactOracleScheme;
use std::sync::Arc;

const N: usize = 30;

fn plane() -> (DistanceMatrix, FrozenPlane<StretchSix<ExactOracleScheme>>) {
    let g = Arc::new(strongly_connected_gnp(N, 0.15, 11).unwrap());
    let m = DistanceMatrix::build(&g);
    let names = NamingAssignment::random(N, 0xbead);
    let scheme =
        StretchSix::build(&g, &m, &names, ExactOracleScheme::build(&g), Stretch6Params::default());
    let frozen = FrozenPlane::freeze(Arc::clone(&g), scheme, Arc::new(names.to_names()));
    (m, frozen)
}

fn summaries_agree(a: &rtr_engine::ServeSummary, b: &rtr_engine::ServeSummary, label: &str) {
    assert_eq!(a.queries, b.queries, "{label}");
    assert_eq!(a.total_hops, b.total_hops, "{label}");
    assert_eq!(a.total_weight, b.total_weight, "{label}");
    assert_eq!(a.max_header_bits, b.max_header_bits, "{label}");
    assert_eq!(a.hop_latency(), b.hop_latency(), "{label}");
}

#[test]
fn one_shard_reproduces_the_unsharded_engine_exactly() {
    let (m, plane) = plane();
    let single = ShardedPlane::new(plane.clone(), ShardMap::single(N));
    let requests = Workload::Mix.generate(N, 700, 3);
    let config = VerifyConfig::full().with_bound(StretchBound::at_most(6));
    for workers in [1usize, 3] {
        let engine = Engine::new(EngineConfig::with_workers(workers));
        let flat = engine.serve(&plane, &requests).unwrap();
        let sharded = engine.serve_sharded(&single, &requests).unwrap();
        summaries_agree(&flat, &sharded.summary, "one shard, unverified");
        assert_eq!(sharded.shards.len(), 1);
        assert_eq!(sharded.shards[0].queries, requests.len() as u64);

        let flat = engine.serve_verified(&plane, &requests, &m, &config).unwrap();
        let sharded = engine.serve_verified_sharded(&single, &requests, &m, &config).unwrap();
        summaries_agree(&flat.summary, &sharded.summary, "one shard, verified");
        assert_eq!(flat.report, sharded.report, "one shard must not change the report");
    }
}

#[test]
fn more_shards_than_workers_with_empty_shards_covers_every_request() {
    let (m, plane) = plane();
    // 40 shards over 30 nodes: at least 10 shards own no destination at all,
    // and with 3 workers every worker owns over a dozen shards.
    let map = ShardMap::hashed(N, 40, 17);
    assert!(map.shard_sizes().contains(&0), "the fixture should exercise empty shards");
    let sharded = ShardedPlane::new(plane.clone(), map);
    let requests = Workload::Uniform.generate(N, 900, 5);
    let config = VerifyConfig::full().with_bound(StretchBound::at_most(6));
    let reference = verify_sequential(&plane, &requests, &m, &config).unwrap();

    let engine = Engine::new(EngineConfig::with_workers(3));
    let outcome = engine.serve_verified_sharded(&sharded, &requests, &m, &config).unwrap();
    assert_eq!(outcome.report, reference);
    assert_eq!(
        outcome.shards.iter().map(|s| s.queries).sum::<u64>(),
        requests.len() as u64,
        "every request must be served exactly once"
    );
    for stats in &outcome.shards {
        if map.destinations(stats.shard).is_empty() {
            assert_eq!(stats.queries, 0, "an empty shard cannot serve queries");
            assert_eq!(stats.handoffs, 0, "an empty shard cannot receive handoffs");
        }
    }
}

#[test]
fn a_hotspot_stream_lands_entirely_on_the_owner_shard() {
    let (m, plane) = plane();
    let map = ShardMap::hashed(N, 4, 7);
    let sharded = ShardedPlane::new(plane.clone(), map);
    let stream_seed = 21;
    let hot = Workload::hotspot_destination(N, stream_seed);
    let owner = map.shard_of(hot);
    let requests = Workload::Hotspot.generate(N, 500, stream_seed);
    assert!(requests.iter().all(|r| r.dst == hot), "hotspot stream fixture");

    let config = VerifyConfig::full().with_bound(StretchBound::at_most(6));
    let reference = verify_sequential(&plane, &requests, &m, &config).unwrap();
    let engine = Engine::new(EngineConfig::with_workers(4));
    let outcome = engine.serve_verified_sharded(&sharded, &requests, &m, &config).unwrap();
    assert_eq!(outcome.report, reference);
    for stats in &outcome.shards {
        let want = if stats.shard == owner { requests.len() as u64 } else { 0 };
        assert_eq!(stats.queries, want, "shard {} query count", stats.shard);
    }
}

#[test]
fn capacity_one_handoffs_with_tiny_flushes_match_the_sequential_replay() {
    let (m, plane) = plane();
    let sharded = ShardedPlane::new(plane.clone(), ShardMap::range(N, 6));
    let requests = Workload::Zipf { exponent: 1.1 }.generate(N, 800, 9);
    let config = VerifyConfig {
        flush_pending: 3,
        ..VerifyConfig::full().with_bound(StretchBound::at_most(6))
    };
    let reference = verify_sequential(&plane, &requests, &m, &config).unwrap();

    let engine = Engine::new(EngineConfig { workers: 5, chunk_size: 4, handoff_capacity: 1 });
    let outcome = engine.serve_verified_sharded(&sharded, &requests, &m, &config).unwrap();
    assert_eq!(outcome.report, reference, "backpressure must not leak into the report");
    assert_eq!(outcome.summary.queries, requests.len());
}
