//! The engine's core contract: for every scheme and any seeded workload, the
//! multi-threaded [`Engine`] produces **exactly** the same
//! [`rtr_sim::RoundtripReport`]s as the sequential [`rtr_sim::Simulator`] —
//! in request order, hence a fortiori as a multiset — for 1, 2 and 8 workers,
//! and the serve-path aggregates are schedule-independent.

use proptest::prelude::*;
use rtr_core::naming::NamingAssignment;
use rtr_core::{SchemeSuite, SuiteParams};
use rtr_engine::{Engine, EngineConfig, FrozenPlane, Workload};
use rtr_graph::generators::strongly_connected_gnp;
use rtr_metric::DistanceMatrix;
use rtr_sim::{RoundtripReport, RoundtripRouting, Simulator};
use std::sync::Arc;

/// Runs the request stream sequentially — the reference the engine must
/// reproduce bit for bit.
fn sequential_reference<S: RoundtripRouting>(
    plane: &FrozenPlane<S>,
    requests: &[rtr_engine::Request],
) -> Vec<RoundtripReport> {
    let sim = Simulator::new(plane.graph());
    requests
        .iter()
        .map(|r| {
            sim.roundtrip(plane.scheme(), r.src, r.dst, plane.name_of(r.dst))
                .expect("sequential reference run failed")
        })
        .collect()
}

fn check_plane<S: RoundtripRouting + Send + Sync>(
    plane: &FrozenPlane<S>,
    requests: &[rtr_engine::Request],
    label: &str,
) {
    let expected = sequential_reference(plane, requests);
    let mut reference_summary = None;
    for workers in [1usize, 2, 8] {
        let engine = Engine::new(EngineConfig::with_workers(workers));
        let got = engine.collect(plane, requests).unwrap();
        assert_eq!(got, expected, "{label}: engine({workers}) diverged from the simulator");

        let summary = engine.serve(plane, requests).unwrap();
        assert_eq!(summary.queries, requests.len(), "{label}");
        let expected_hops: u64 = expected.iter().map(|r| r.total_hops() as u64).sum();
        assert_eq!(summary.total_hops, expected_hops, "{label}: hop accounting diverged");
        let expected_weight: u128 = expected.iter().map(|r| u128::from(r.total_weight())).sum();
        assert_eq!(summary.total_weight, expected_weight, "{label}: weight accounting diverged");
        match &reference_summary {
            None => reference_summary = Some(summary),
            Some(first) => {
                assert_eq!(summary.hop_latency(), first.hop_latency(), "{label}");
                assert_eq!(summary.max_header_bits, first.max_header_bits, "{label}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn engine_reproduces_the_sequential_simulator(seed in 0u64..1000) {
        let n = 24 + (seed as usize % 8);
        let g = Arc::new(strongly_connected_gnp(n, 0.12, seed).unwrap());
        let m = DistanceMatrix::build(&g);
        let names = NamingAssignment::random(n, seed ^ 0xabcd);
        let suite = SchemeSuite::build(&g, &m, &names, SuiteParams::default());
        let (stretch6, exstretch, poly) = suite.into_parts();
        let frozen_names = Arc::new(names.to_names());

        let plane6 = FrozenPlane::freeze(Arc::clone(&g), stretch6, Arc::clone(&frozen_names));
        let planex = FrozenPlane::freeze(Arc::clone(&g), exstretch, Arc::clone(&frozen_names));
        let planep = FrozenPlane::freeze(Arc::clone(&g), poly, Arc::clone(&frozen_names));

        for workload in Workload::ALL {
            let requests = workload.generate(n, 160, seed.wrapping_mul(31));
            check_plane(&plane6, &requests, &format!("stretch6/{}", workload.name()));
            check_plane(&planex, &requests, &format!("exstretch/{}", workload.name()));
            check_plane(&planep, &requests, &format!("polystretch/{}", workload.name()));
        }
    }
}
