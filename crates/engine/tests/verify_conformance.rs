//! The verification plane's core contract: for every scheme, workload, and
//! oracle flavor, [`Engine::serve_verified`] under [`VerifyMode::Full`]
//! produces a [`rtr_engine::VerifiedReport`] **bit-identical** across 1, 2
//! and 8 workers (and across flush thresholds) and equal to
//! [`verify_sequential`], the sequential oracle-checked replay — checking
//! 100% of the stream, within each scheme's proven stretch ceiling, in
//! strict mode.  The sharded engine extends the contract: any shard count ×
//! policy × worker count reproduces the same report, with per-shard query
//! counts that depend only on the destinations, never on the schedule.

use proptest::prelude::*;
use rtr_core::naming::NamingAssignment;
use rtr_core::{SchemeSuite, SparseRepairKit, SparseSuiteParams, SuiteParams};
use rtr_engine::{
    chaos_report, verify_sequential, Engine, EngineConfig, EpochReport, FrozenPlane, ShardMap,
    ShardedPlane, StretchBound, VerifiedReport, VerifyConfig, VerifyMode, Workload,
};
use rtr_graph::generators::strongly_connected_gnp;
use rtr_graph::{FaultPlan, NodeId};
use rtr_metric::{
    CachedSubsetOracle, DistanceMatrix, DistanceOracle, LazyDijkstraOracle, RowInvalidation,
};
use rtr_sim::RoundtripRouting;
use std::sync::Arc;

/// Asserts that full verification of `requests` over `plane` is
/// schedule-independent: every worker count × oracle flavor × flush
/// threshold reproduces the sequential dense-oracle replay bit for bit.
fn check_conformance<S: RoundtripRouting + Send + Sync>(
    plane: &FrozenPlane<S>,
    requests: &[rtr_engine::Request],
    dense: &DistanceMatrix,
    lazy: &LazyDijkstraOracle<'_>,
    subset: &CachedSubsetOracle<'_>,
    bound: StretchBound,
    label: &str,
) {
    let config = VerifyConfig::full().with_bound(bound);
    let reference: VerifiedReport = verify_sequential(plane, requests, dense, &config)
        .unwrap_or_else(|e| panic!("{label}: sequential replay failed: {e}"));
    assert_eq!(reference.checked, requests.len(), "{label}: full mode must check 100%");
    assert!(reference.is_clean(), "{label}: proven bound violated: {:?}", reference.violations);

    for workers in [1usize, 2, 8] {
        let engine = Engine::new(EngineConfig::with_workers(workers));
        for (oracle, oracle_name) in
            [(dense as &dyn DistanceOracle, "dense"), (lazy, "lazy"), (subset, "subset")]
        {
            let outcome = engine
                .serve_verified(plane, requests, oracle, &config)
                .unwrap_or_else(|e| panic!("{label}/{oracle_name}({workers}): {e}"));
            assert_eq!(
                outcome.report, reference,
                "{label}/{oracle_name}: report diverged at {workers} workers"
            );
        }
        // A tiny flush threshold forces many mid-stream bucket flushes; the
        // report must not notice.
        let tight = VerifyConfig { flush_pending: 13, ..config };
        let outcome = engine
            .serve_verified(plane, requests, dense, &tight)
            .unwrap_or_else(|e| panic!("{label}/tight({workers}): {e}"));
        assert_eq!(outcome.report, reference, "{label}: flush threshold leaked into the report");
    }

    // The sharded plane must reproduce the same report bit for bit for any
    // shard count × policy × worker count, with per-shard query counts that
    // are destination-pure (identical whatever the worker count).
    for shards in [1usize, 2, 4] {
        let maps = [
            ShardMap::hashed(plane.node_count(), shards, 0xA11CE),
            ShardMap::range(plane.node_count(), shards),
        ];
        for map in maps {
            let sharded = ShardedPlane::new(plane.clone(), map);
            let mut shard_queries: Option<Vec<u64>> = None;
            for workers in [1usize, 2, 8] {
                let engine = Engine::new(EngineConfig::with_workers(workers));
                let policy = map.policy().name();
                let outcome = engine
                    .serve_verified_sharded(&sharded, requests, lazy, &config)
                    .unwrap_or_else(|e| panic!("{label}/{policy}×{shards}({workers}): {e}"));
                assert_eq!(
                    outcome.report, reference,
                    "{label}: sharded report diverged ({policy} policy, {shards} shards, \
                     {workers} workers)"
                );
                let queries: Vec<u64> = outcome.shards.iter().map(|s| s.queries).collect();
                assert_eq!(queries.iter().sum::<u64>(), requests.len() as u64, "{label}");
                match &shard_queries {
                    None => shard_queries = Some(queries),
                    Some(first) => assert_eq!(
                        &queries, first,
                        "{label}: per-shard queries depend on the worker count"
                    ),
                }
            }
        }
    }

    // Sampled mode checks exactly the strided subset, identically.
    let sampled = VerifyConfig { mode: VerifyMode::Sampled { stride: 5 }, ..config };
    let seq = verify_sequential(plane, requests, dense, &sampled).unwrap();
    assert_eq!(seq.checked, requests.len().div_ceil(5), "{label}: sampled stride");
    let engine = Engine::new(EngineConfig::with_workers(3));
    let outcome = engine.serve_verified(plane, requests, lazy, &sampled).unwrap();
    assert_eq!(outcome.report, seq, "{label}: sampled mode diverged");
}

/// The chaos plane's determinism contract: one seed pins the entire run.
/// The fault plan generator must emit an identical delta sequence for the
/// same seed, and the three-epoch [`rtr_engine::VerifiedReport`] of a full
/// chaos cycle — pre-fault serve, degraded serve through the fault window,
/// post-repair serve off the incrementally repaired substrate — must be
/// bit-identical across 1, 2 and 8 workers under both shard policies.
#[test]
fn chaos_epochs_are_bit_identical_across_workers_and_shard_policies() {
    let mut exercised = 0usize;
    for seed in 0..6u64 {
        let n = 28 + (seed as usize % 4);
        let g0 = Arc::new(strongly_connected_gnp(n, 0.15, seed).unwrap());
        let edges: Vec<(NodeId, NodeId)> =
            g0.nodes().flat_map(|u| g0.out_edges(u).iter().map(move |e| (u, e.to))).collect();

        // Same seed ⇒ identical delta sequence, twice over.
        let plan = FaultPlan::mixed_from_candidates(&edges, 4, 2, 3, seed ^ 0x5eed);
        let replay = FaultPlan::mixed_from_candidates(&edges, 4, 2, 3, seed ^ 0x5eed);
        assert_eq!(plan, replay, "seed {seed}: fault plan generation is not deterministic");

        let mut mutated = (*g0).clone();
        let applied = plan.apply(&mut mutated);
        assert_eq!(applied, plan.apply(&mut (*g0).clone()), "seed {seed}: application diverged");
        if !mutated.is_strongly_connected() {
            continue;
        }
        let g1 = Arc::new(mutated);

        // Build → fault → repair, once; the serving planes are frozen and
        // reused across every engine configuration below.
        let m0 = CachedSubsetOracle::new(&g0);
        let kit = SparseRepairKit::build(&g0, &m0, SparseSuiteParams::default());
        let inv = RowInvalidation::for_application(&m0, &applied);
        let m1 = CachedSubsetOracle::rebased(&m0, &g1, &inv);
        let (kit1, _) = kit.repair(&g1, &m1, &inv, &applied);
        let names = NamingAssignment::random(n, seed ^ 0x7e57);
        let (_, sx) = kit.schemes(&g0, &m0, &names);
        let (_, sxr) = kit1.schemes(&g1, &m1, &names);
        let bound = sx.paper_stretch_bound().unwrap();
        let frozen_names = Arc::new(names.to_names());
        let pre_plane = FrozenPlane::freeze(Arc::clone(&g0), sx, Arc::clone(&frozen_names));
        let degraded_plane = pre_plane.clone().with_graph(Arc::clone(&g1));
        let post_plane = FrozenPlane::freeze(Arc::clone(&g1), sxr, frozen_names);

        let pre_req = Workload::Mix.generate(n, 140, seed.wrapping_mul(31));
        let deg_req = Workload::Uniform.generate(n, 140, seed.wrapping_mul(37));
        let post_req = Workload::Mix.generate(n, 140, seed.wrapping_mul(41));
        let config = VerifyConfig::full().with_bound(StretchBound::at_most(bound));

        let mut reference: Option<VerifiedReport> = None;
        for workers in [1usize, 2, 8] {
            let engine = Engine::new(EngineConfig::with_workers(workers));
            for map in [ShardMap::hashed(n, 3, 0xA11CE), ShardMap::range(n, 3)] {
                let policy = map.policy().name();
                let pre = engine.serve_epoch_sharded(
                    &ShardedPlane::new(pre_plane.clone(), map),
                    &pre_req,
                    &m0,
                    &config,
                );
                let deg = engine.serve_epoch_sharded(
                    &ShardedPlane::new(degraded_plane.clone(), map),
                    &deg_req,
                    &m1,
                    &config,
                );
                let post = engine.serve_epoch_sharded(
                    &ShardedPlane::new(post_plane.clone(), map),
                    &post_req,
                    &m1,
                    &config,
                );
                let report = chaos_report(&pre, &deg, &post);
                let epochs: &[EpochReport] = &report.epochs;
                assert_eq!(epochs.len(), 3, "seed {seed}");
                assert!(
                    epochs[0].is_clean(),
                    "seed {seed}: pre-fault epoch violated the proven ceiling"
                );
                assert!(
                    epochs[2].is_clean(),
                    "seed {seed}: post-repair epoch still degraded: {:?} violations, {} failed",
                    epochs[2].report.violations,
                    epochs[2].failed(),
                );
                match &reference {
                    None => reference = Some(report),
                    Some(first) => assert_eq!(
                        &report, first,
                        "seed {seed}: chaos epochs diverged at {workers} workers ({policy})"
                    ),
                }
            }
        }
        exercised += 1;
    }
    assert!(exercised >= 3, "only {exercised} seeded plans kept the graph strongly connected");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn full_verification_is_schedule_independent_for_every_scheme_and_workload(
        seed in 0u64..500,
    ) {
        let n = 22 + (seed as usize % 6);
        let g = Arc::new(strongly_connected_gnp(n, 0.14, seed).unwrap());
        let dense = DistanceMatrix::build(&g);
        let lazy = LazyDijkstraOracle::new(&g, 6);
        let subset = CachedSubsetOracle::new(&g);
        let names = NamingAssignment::random(n, seed ^ 0x7e57);
        let suite = SchemeSuite::build(&g, &dense, &names, SuiteParams::default());

        // The three proven ceilings: 6 for §2 (exact-oracle substrate),
        // (2^k − 1)·β for §3 (tree-cover substrate), 8k² + 4k − 4 for §4.
        let ex_bound = suite.exstretch.paper_stretch_bound().unwrap();
        let poly_bound = suite.poly.paper_stretch_bound();
        let (stretch6, exstretch, poly) = suite.into_parts();
        let frozen_names = Arc::new(names.to_names());

        let plane6 = FrozenPlane::freeze(Arc::clone(&g), stretch6, Arc::clone(&frozen_names));
        let planex = FrozenPlane::freeze(Arc::clone(&g), exstretch, Arc::clone(&frozen_names));
        let planep = FrozenPlane::freeze(Arc::clone(&g), poly, Arc::clone(&frozen_names));

        for workload in Workload::ALL {
            let requests = workload.generate(n, 110, seed.wrapping_mul(17));
            let w = workload.name();
            check_conformance(
                &plane6, &requests, &dense, &lazy, &subset,
                StretchBound::at_most(6), &format!("stretch6/{w}"),
            );
            check_conformance(
                &planex, &requests, &dense, &lazy, &subset,
                StretchBound::at_most(ex_bound), &format!("exstretch/{w}"),
            );
            check_conformance(
                &planep, &requests, &dense, &lazy, &subset,
                StretchBound::at_most(poly_bound), &format!("polystretch/{w}"),
            );
        }
    }
}
