//! The verification plane's core contract: for every scheme, workload, and
//! oracle flavor, [`Engine::serve_verified`] under [`VerifyMode::Full`]
//! produces a [`rtr_engine::VerifiedReport`] **bit-identical** across 1, 2
//! and 8 workers (and across flush thresholds) and equal to
//! [`verify_sequential`], the sequential oracle-checked replay — checking
//! 100% of the stream, within each scheme's proven stretch ceiling, in
//! strict mode.  The sharded engine extends the contract: any shard count ×
//! policy × worker count reproduces the same report, with per-shard query
//! counts that depend only on the destinations, never on the schedule.

use proptest::prelude::*;
use rtr_core::naming::NamingAssignment;
use rtr_core::{SchemeSuite, SuiteParams};
use rtr_engine::{
    verify_sequential, Engine, EngineConfig, FrozenPlane, ShardMap, ShardedPlane, StretchBound,
    VerifiedReport, VerifyConfig, VerifyMode, Workload,
};
use rtr_graph::generators::strongly_connected_gnp;
use rtr_metric::{CachedSubsetOracle, DistanceMatrix, DistanceOracle, LazyDijkstraOracle};
use rtr_sim::RoundtripRouting;
use std::sync::Arc;

/// Asserts that full verification of `requests` over `plane` is
/// schedule-independent: every worker count × oracle flavor × flush
/// threshold reproduces the sequential dense-oracle replay bit for bit.
fn check_conformance<S: RoundtripRouting + Send + Sync>(
    plane: &FrozenPlane<S>,
    requests: &[rtr_engine::Request],
    dense: &DistanceMatrix,
    lazy: &LazyDijkstraOracle<'_>,
    subset: &CachedSubsetOracle<'_>,
    bound: StretchBound,
    label: &str,
) {
    let config = VerifyConfig::full().with_bound(bound);
    let reference: VerifiedReport = verify_sequential(plane, requests, dense, &config)
        .unwrap_or_else(|e| panic!("{label}: sequential replay failed: {e}"));
    assert_eq!(reference.checked, requests.len(), "{label}: full mode must check 100%");
    assert!(reference.is_clean(), "{label}: proven bound violated: {:?}", reference.violations);

    for workers in [1usize, 2, 8] {
        let engine = Engine::new(EngineConfig::with_workers(workers));
        for (oracle, oracle_name) in
            [(dense as &dyn DistanceOracle, "dense"), (lazy, "lazy"), (subset, "subset")]
        {
            let outcome = engine
                .serve_verified(plane, requests, oracle, &config)
                .unwrap_or_else(|e| panic!("{label}/{oracle_name}({workers}): {e}"));
            assert_eq!(
                outcome.report, reference,
                "{label}/{oracle_name}: report diverged at {workers} workers"
            );
        }
        // A tiny flush threshold forces many mid-stream bucket flushes; the
        // report must not notice.
        let tight = VerifyConfig { flush_pending: 13, ..config };
        let outcome = engine
            .serve_verified(plane, requests, dense, &tight)
            .unwrap_or_else(|e| panic!("{label}/tight({workers}): {e}"));
        assert_eq!(outcome.report, reference, "{label}: flush threshold leaked into the report");
    }

    // The sharded plane must reproduce the same report bit for bit for any
    // shard count × policy × worker count, with per-shard query counts that
    // are destination-pure (identical whatever the worker count).
    for shards in [1usize, 2, 4] {
        let maps = [
            ShardMap::hashed(plane.node_count(), shards, 0xA11CE),
            ShardMap::range(plane.node_count(), shards),
        ];
        for map in maps {
            let sharded = ShardedPlane::new(plane.clone(), map);
            let mut shard_queries: Option<Vec<u64>> = None;
            for workers in [1usize, 2, 8] {
                let engine = Engine::new(EngineConfig::with_workers(workers));
                let policy = map.policy().name();
                let outcome = engine
                    .serve_verified_sharded(&sharded, requests, lazy, &config)
                    .unwrap_or_else(|e| panic!("{label}/{policy}×{shards}({workers}): {e}"));
                assert_eq!(
                    outcome.report, reference,
                    "{label}: sharded report diverged ({policy} policy, {shards} shards, \
                     {workers} workers)"
                );
                let queries: Vec<u64> = outcome.shards.iter().map(|s| s.queries).collect();
                assert_eq!(queries.iter().sum::<u64>(), requests.len() as u64, "{label}");
                match &shard_queries {
                    None => shard_queries = Some(queries),
                    Some(first) => assert_eq!(
                        &queries, first,
                        "{label}: per-shard queries depend on the worker count"
                    ),
                }
            }
        }
    }

    // Sampled mode checks exactly the strided subset, identically.
    let sampled = VerifyConfig { mode: VerifyMode::Sampled { stride: 5 }, ..config };
    let seq = verify_sequential(plane, requests, dense, &sampled).unwrap();
    assert_eq!(seq.checked, requests.len().div_ceil(5), "{label}: sampled stride");
    let engine = Engine::new(EngineConfig::with_workers(3));
    let outcome = engine.serve_verified(plane, requests, lazy, &sampled).unwrap();
    assert_eq!(outcome.report, seq, "{label}: sampled mode diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn full_verification_is_schedule_independent_for_every_scheme_and_workload(
        seed in 0u64..500,
    ) {
        let n = 22 + (seed as usize % 6);
        let g = Arc::new(strongly_connected_gnp(n, 0.14, seed).unwrap());
        let dense = DistanceMatrix::build(&g);
        let lazy = LazyDijkstraOracle::new(&g, 6);
        let subset = CachedSubsetOracle::new(&g);
        let names = NamingAssignment::random(n, seed ^ 0x7e57);
        let suite = SchemeSuite::build(&g, &dense, &names, SuiteParams::default());

        // The three proven ceilings: 6 for §2 (exact-oracle substrate),
        // (2^k − 1)·β for §3 (tree-cover substrate), 8k² + 4k − 4 for §4.
        let ex_bound = suite.exstretch.paper_stretch_bound().unwrap();
        let poly_bound = suite.poly.paper_stretch_bound();
        let (stretch6, exstretch, poly) = suite.into_parts();
        let frozen_names = Arc::new(names.to_names());

        let plane6 = FrozenPlane::freeze(Arc::clone(&g), stretch6, Arc::clone(&frozen_names));
        let planex = FrozenPlane::freeze(Arc::clone(&g), exstretch, Arc::clone(&frozen_names));
        let planep = FrozenPlane::freeze(Arc::clone(&g), poly, Arc::clone(&frozen_names));

        for workload in Workload::ALL {
            let requests = workload.generate(n, 110, seed.wrapping_mul(17));
            let w = workload.name();
            check_conformance(
                &plane6, &requests, &dense, &lazy, &subset,
                StretchBound::at_most(6), &format!("stretch6/{w}"),
            );
            check_conformance(
                &planex, &requests, &dense, &lazy, &subset,
                StretchBound::at_most(ex_bound), &format!("exstretch/{w}"),
            );
            check_conformance(
                &planep, &requests, &dense, &lazy, &subset,
                StretchBound::at_most(poly_bound), &format!("polystretch/{w}"),
            );
        }
    }
}
