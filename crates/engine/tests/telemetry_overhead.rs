//! Telemetry overhead gate: serving with the sink enabled must stay within a
//! generous fixed factor of serving with the runtime no-op sink.  The strict
//! production gate (1.25× on the n=600 smoke) lives in the
//! `serve_throughput` benchmark behind `RTR_TELEMETRY_MAX_OVERHEAD`; this
//! test is the always-on tier-1 backstop with enough slack (1.5× plus an
//! absolute floor) to stay robust on noisy shared runners.
//!
//! One `#[test]` function on purpose: `rtr_telemetry::set_enabled` flips a
//! process-global flag, so enabled/disabled timing must stay sequential.
//! Runs are interleaved (on, off, on, off, …) and the minimum of five is
//! compared, which cancels warm-up and scheduler noise far better than
//! comparing single runs.

use rtr_core::naming::NamingAssignment;
use rtr_core::{SchemeSuite, SuiteParams};
use rtr_engine::{Engine, EngineConfig, FrozenPlane, ShardMap, ShardedPlane, Workload};
use rtr_graph::generators::strongly_connected_gnp;
use rtr_metric::DistanceMatrix;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn enabled_telemetry_stays_within_bounded_overhead_of_the_noop_sink() {
    let n = 60;
    let g = Arc::new(strongly_connected_gnp(n, 0.1, 7).unwrap());
    let dense = DistanceMatrix::build(&g);
    let names = NamingAssignment::random(n, 0xfeed);
    let suite = SchemeSuite::build(&g, &dense, &names, SuiteParams::default());
    let (stretch6, _, _) = suite.into_parts();
    let plane = FrozenPlane::freeze(Arc::clone(&g), stretch6, Arc::new(names.to_names()));
    let sharded = ShardedPlane::new(plane, ShardMap::hashed(n, 4, 0xA11CE));
    let requests = Workload::Mix.generate(n, 4000, 3);
    let engine = Engine::new(EngineConfig::with_workers(4));

    let run = |enabled: bool| -> Duration {
        rtr_telemetry::set_enabled(enabled);
        let started = Instant::now();
        let outcome = engine.serve_sharded(&sharded, &requests).unwrap();
        let elapsed = started.elapsed();
        assert_eq!(outcome.summary.queries, requests.len());
        elapsed
    };

    // Warm up both paths once, then interleave five timed pairs.
    run(true);
    run(false);
    let mut best_on = Duration::MAX;
    let mut best_off = Duration::MAX;
    for _ in 0..5 {
        best_on = best_on.min(run(true));
        best_off = best_off.min(run(false));
    }
    rtr_telemetry::set_enabled(true);

    // 1.5× the no-op wall plus a 10 ms absolute floor: sub-floor runs are
    // dominated by thread spawn/join noise, not by telemetry.
    let budget = best_off.mul_f64(1.5) + Duration::from_millis(10);
    assert!(
        best_on <= budget,
        "telemetry overhead out of bounds: enabled {best_on:?} vs no-op {best_off:?} \
         (budget {budget:?})"
    );
}
