//! The three metric primitives: striped counters, high-water gauges and
//! fixed-bucket duration histograms.  All handles are cheap `Arc` clones of
//! registry-owned state, so call sites cache them once and write lock-free.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Stripes per counter.  Threads hash to stripes round-robin; eight
/// cache-line-aligned slots are enough to keep any realistic worker pool
/// from bouncing a line on concurrent increments.
const STRIPES: usize = 8;

/// Log₂-nanosecond buckets per duration histogram.  Bucket `i` holds
/// durations in `[2^(i-1), 2^i)` ns (bucket 0 holds `[0, 1]` ns); the last
/// bucket absorbs everything from ~9 minutes up.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Monotonically assigns each thread a stripe index on first use.
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

fn stripe_index() -> usize {
    STRIPE.with(|s| *s)
}

/// One cache line per stripe so concurrent writers never share a line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Stripe(AtomicU64);

#[derive(Debug, Default)]
pub(crate) struct CounterInner {
    stripes: [Stripe; STRIPES],
}

impl CounterInner {
    pub(crate) fn reset(&self) {
        for s in &self.stripes {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A monotonically increasing `u64` counter, striped over padded atomics.
///
/// Handles are cheap clones of shared state; `add` is a single relaxed
/// `fetch_add` on the calling thread's stripe (or a branch, when the sink is
/// disabled), `value` sums the stripes.
#[derive(Debug, Clone)]
pub struct Counter {
    inner: Arc<CounterInner>,
}

impl Counter {
    pub(crate) fn new(inner: Arc<CounterInner>) -> Self {
        Counter { inner }
    }

    /// Adds `delta` (no-op when the sink is disabled).
    pub fn add(&self, delta: u64) {
        if crate::enabled() {
            self.inner.stripes[stripe_index()].0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total (sum over stripes).  Reads are always live, even
    /// with the sink disabled.
    pub fn value(&self) -> u64 {
        self.inner.stripes.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

#[derive(Debug, Default)]
pub(crate) struct GaugeInner {
    value: AtomicU64,
    high_water: AtomicU64,
}

impl GaugeInner {
    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
        self.high_water.store(0, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> (u64, u64) {
        (self.value.load(Ordering::Relaxed), self.high_water.load(Ordering::Relaxed))
    }
}

/// A `u64` gauge that remembers its high-water mark.
#[derive(Debug, Clone)]
pub struct Gauge {
    inner: Arc<GaugeInner>,
}

impl Gauge {
    pub(crate) fn new(inner: Arc<GaugeInner>) -> Self {
        Gauge { inner }
    }

    /// Stores `v` and raises the high-water mark if `v` exceeds it.
    pub fn set(&self, v: u64) {
        if crate::enabled() {
            self.inner.value.store(v, Ordering::Relaxed);
            self.inner.high_water.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Raises both the value and the high-water mark to at least `v` —
    /// the idiom for publishing a locally tracked maximum.
    pub fn set_max(&self, v: u64) {
        if crate::enabled() {
            self.inner.value.fetch_max(v, Ordering::Relaxed);
            self.inner.high_water.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// The last stored value.
    pub fn value(&self) -> u64 {
        self.inner.value.load(Ordering::Relaxed)
    }

    /// The largest value ever stored.
    pub fn high_water(&self) -> u64 {
        self.inner.high_water.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
pub(crate) struct HistogramInner {
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl HistogramInner {
    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    pub(crate) fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// The log₂-ns bucket index for a duration of `ns` nanoseconds.
fn bucket_of(ns: u64) -> usize {
    if ns <= 1 {
        0
    } else {
        ((64 - ns.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The inclusive lower bound (in ns) of bucket `i` of a
/// [`DurationHistogram`]: bucket 0 covers `[0, 1]` ns, bucket `i > 0` covers
/// `[2^(i-1), 2^i)` ns.  Used to label exports and to read percentiles.
pub fn bucket_floor_ns(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A fixed-bucket duration histogram: count, sum, max and `HISTOGRAM_BUCKETS`
/// log₂-nanosecond buckets, all plain atomics.  Intended for coarse events
/// (build stages, verify flushes), not the per-request path.
#[derive(Debug, Clone)]
pub struct DurationHistogram {
    inner: Arc<HistogramInner>,
}

impl DurationHistogram {
    pub(crate) fn new(inner: Arc<HistogramInner>) -> Self {
        DurationHistogram { inner }
    }

    /// Records one duration (no-op when the sink is disabled).
    pub fn observe(&self, d: Duration) {
        if crate::enabled() {
            let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
            self.inner.count.fetch_add(1, Ordering::Relaxed);
            self.inner.sum_ns.fetch_add(ns, Ordering::Relaxed);
            self.inner.max_ns.fetch_max(ns, Ordering::Relaxed);
            self.inner.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded durations, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.inner.sum_ns.load(Ordering::Relaxed)
    }

    /// The largest recorded duration, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.inner.max_ns.load(Ordering::Relaxed)
    }

    /// A snapshot of the raw bucket counts: slot `i` counts observations in
    /// `[bucket_floor_ns(i), bucket_floor_ns(i+1))` ns (see
    /// [`bucket_floor_ns`]).
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        self.inner.bucket_counts()
    }

    /// The `p`-quantile (`0 ≤ p ≤ 1`) of the recorded durations, reported as
    /// the inclusive lower edge of its log₂-ns bucket — so the value is a
    /// floor accurate to a factor of 2, which is what an SLO readout over
    /// power-of-two buckets can honestly claim.  Returns 0 when nothing was
    /// recorded.
    ///
    /// The walk snapshots the buckets once; concurrent observations land in
    /// the next call.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        let buckets = self.inner.bucket_counts();
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return bucket_floor_ns(i);
            }
        }
        bucket_floor_ns(HISTOGRAM_BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_ns() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for i in 2..HISTOGRAM_BUCKETS - 1 {
            // Every bucket covers exactly [floor(i), floor(i+1)).
            assert_eq!(bucket_of(bucket_floor_ns(i)), i);
            assert_eq!(bucket_of(bucket_floor_ns(i + 1) - 1), i);
        }
    }

    #[test]
    fn histogram_tracks_count_sum_max() {
        let _guard = crate::test_lock();
        let h = DurationHistogram::new(Arc::new(HistogramInner::default()));
        h.observe(Duration::from_nanos(100));
        h.observe(Duration::from_nanos(300));
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum_ns(), 400);
        assert_eq!(h.max_ns(), 300);
        let buckets = h.inner.bucket_counts();
        assert_eq!(buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn percentiles_report_bucket_floors() {
        let _guard = crate::test_lock();
        let h = DurationHistogram::new(Arc::new(HistogramInner::default()));
        assert_eq!(h.percentile_ns(0.5), 0);
        for _ in 0..98 {
            h.observe(Duration::from_nanos(100)); // bucket [64, 128)
        }
        h.observe(Duration::from_nanos(5_000)); // bucket [4096, 8192)
        h.observe(Duration::from_micros(200)); // bucket [131072, 262144)
        assert_eq!(h.percentile_ns(0.0), 64);
        assert_eq!(h.percentile_ns(0.5), 64);
        assert_eq!(h.percentile_ns(0.99), 4096);
        assert_eq!(h.percentile_ns(1.0), 131_072);
        assert_eq!(h.buckets().iter().sum::<u64>(), 100);
    }
}
