//! RAII spans with per-thread nesting.  Entering a span pushes its name onto
//! a thread-local path (`outer/inner`); dropping the guard times the span,
//! aggregates it in the registry under the full path, and appends a flight
//! event.  Guards are deliberately `!Send` — a span times the thread that
//! opened it.

use crate::registry::registry;
use std::cell::RefCell;
use std::fmt::Display;
use std::marker::PhantomData;
use std::time::Instant;

thread_local! {
    /// The `/`-joined path of currently open spans on this thread.
    static PATH: RefCell<String> = const { RefCell::new(String::new()) };
}

struct Live {
    start: Instant,
    /// Path length before this span was pushed; drop truncates back to it.
    prev_len: usize,
    detail: String,
}

/// A timed span guard, created by [`Span::enter`] or the
/// [`span!`](crate::span) macro.  Records itself into the global registry
/// when dropped; inert (records nothing) when the sink is disabled at entry.
#[derive(Debug)]
pub struct Span {
    live: Option<Live>,
    /// Spans time the opening thread; sending the guard elsewhere would
    /// corrupt that thread's path stack.
    _not_send: PhantomData<*const ()>,
}

impl std::fmt::Debug for Live {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Live").field("detail", &self.detail).finish_non_exhaustive()
    }
}

impl Span {
    /// Opens a span named `name` under the thread's current span path.
    pub fn enter(name: &str) -> Span {
        Span::open(name, String::new())
    }

    /// Opens a span with a `detail` annotation (recorded in the flight
    /// event, not in the aggregate path).
    pub fn enter_with(name: &str, detail: &dyn Display) -> Span {
        if !crate::enabled() {
            return Span { live: None, _not_send: PhantomData };
        }
        Span::open(name, detail.to_string())
    }

    fn open(name: &str, detail: String) -> Span {
        if !crate::enabled() {
            return Span { live: None, _not_send: PhantomData };
        }
        let prev_len = PATH.with(|p| {
            let mut p = p.borrow_mut();
            let prev = p.len();
            if !p.is_empty() {
                p.push('/');
            }
            p.push_str(name);
            prev
        });
        Span {
            live: Some(Live { start: Instant::now(), prev_len, detail }),
            _not_send: PhantomData,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let dur = live.start.elapsed();
            let path = PATH.with(|p| {
                let mut p = p.borrow_mut();
                let full = p.clone();
                p.truncate(live.prev_len);
                full
            });
            registry().complete_span(path, live.detail, dur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_span_leaves_no_path_residue() {
        let _guard = crate::test_lock();
        crate::set_enabled(false);
        {
            let _s = Span::enter("test.span.inert");
            PATH.with(|p| assert!(p.borrow().is_empty()));
        }
        crate::set_enabled(true);
        {
            let _a = Span::enter("test.span.a");
            PATH.with(|p| assert_eq!(*p.borrow(), "test.span.a"));
        }
        PATH.with(|p| assert!(p.borrow().is_empty()));
    }
}
