//! # rtr-telemetry — zero-dependency metrics, spans and a flight recorder
//!
//! A process-wide [`Registry`] of named **counters**, **gauges** and
//! fixed-bucket **duration histograms**, plus lightweight **spans** with
//! monotonic timing and a bounded ring-buffer **flight recorder** holding
//! the last K completed traces.  Built on `std` only (no shims, no external
//! crates) so every crate in the workspace can instrument itself without
//! adding a dependency edge beyond this one.
//!
//! Design constraints, in order:
//!
//! 1. **Zero contention on the serve hot path.**  Counters are striped over
//!    cache-line-aligned atomics (threads hash to stripes), so concurrent
//!    workers never bounce a line.  Nothing in the per-request path takes a
//!    lock; spans and histograms are reserved for coarse events (build
//!    stages, verify flushes) and touch a mutex only on completion.
//! 2. **Neutrality.**  Telemetry observes, it never steers: enabling or
//!    disabling it must leave every deterministic report bit-identical
//!    (`rtr-engine` has a property test for exactly this).  The runtime
//!    no-op sink ([`set_enabled`]`(false)`) turns every write into a single
//!    relaxed load-and-branch; the `telemetry-off` cargo feature compiles
//!    the writes out entirely.
//! 3. **No registry access at build time.**  Export is hand-rolled JSON
//!    ([`Registry::to_json`]) and a human-readable span tree
//!    ([`Registry::span_report`]), consistent with the rest of the
//!    workspace's artifact style.
//!
//! ```
//! use std::time::Duration;
//!
//! rtr_telemetry::counter("oracle.demo.rows_computed").add(3);
//! rtr_telemetry::gauge("engine.demo.queue_depth").set_max(17);
//! rtr_telemetry::histogram("verify.demo.flush").observe(Duration::from_micros(250));
//! {
//!     let _outer = rtr_telemetry::span!("build.demo");
//!     let _inner = rtr_telemetry::span!("cover.scale_group", 2);
//! } // both spans complete here and aggregate under "build.demo/..."
//! assert_eq!(rtr_telemetry::registry().counter_value("oracle.demo.rows_computed"), 3);
//! let json = rtr_telemetry::registry().to_json();
//! assert!(json.contains("\"oracle.demo.rows_computed\": 3"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod export;
mod metrics;
mod registry;
mod span;

pub use metrics::{bucket_floor_ns, Counter, DurationHistogram, Gauge, HISTOGRAM_BUCKETS};
pub use registry::{registry, Registry, SpanStats, TraceEvent};
pub use span::Span;

use std::sync::atomic::{AtomicBool, Ordering};

/// Runtime sink switch.  `true` (the default) records everything; `false`
/// turns every instrumentation call into a relaxed load plus a branch.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Flips the runtime no-op sink: `set_enabled(false)` makes every counter
/// add, gauge store, histogram observation and span a no-op until re-enabled.
/// Values already recorded are kept (use [`Registry::reset`] to clear them).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether instrumentation is live: the runtime switch is on **and** the
/// crate was not compiled with the `telemetry-off` feature.
pub fn enabled() -> bool {
    cfg!(not(feature = "telemetry-off")) && ENABLED.load(Ordering::Relaxed)
}

/// The counter `name` in the global registry (cheap to clone; cache the
/// handle outside loops).
pub fn counter(name: &str) -> Counter {
    registry().counter(name)
}

/// The gauge `name` in the global registry.
pub fn gauge(name: &str) -> Gauge {
    registry().gauge(name)
}

/// The duration histogram `name` in the global registry.
pub fn histogram(name: &str) -> DurationHistogram {
    registry().histogram(name)
}

/// Opens a timed [`Span`] that completes (and records itself) when the
/// returned guard drops.  Spans nest per thread: a span opened while another
/// is live aggregates under the path `outer/inner`.
///
/// `span!("name")` records just the path; `span!("name", detail)` attaches
/// `detail` (anything `Display`) to the flight-recorder event.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
    ($name:expr, $detail:expr) => {
        $crate::Span::enter_with($name, &$detail)
    };
}

/// Serializes tests that read or flip the global sink switch — they run on
/// parallel threads within one test binary and would otherwise race.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counters_sum_across_threads() {
        let _guard = crate::test_lock();
        let c = counter("test.lib.threads");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 4000);
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let _guard = crate::test_lock();
        let c = counter("test.lib.disabled");
        let g = gauge("test.lib.disabled_gauge");
        let h = histogram("test.lib.disabled_hist");
        set_enabled(false);
        c.add(7);
        g.set(9);
        h.observe(Duration::from_millis(1));
        let s = span!("test.lib.disabled_span");
        drop(s);
        set_enabled(true);
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0);
        assert_eq!(h.count(), 0);
        assert!(registry().spans().iter().all(|(p, _)| !p.contains("disabled_span")));
    }

    #[test]
    fn spans_nest_into_paths() {
        let _guard = crate::test_lock();
        {
            let _a = span!("test.lib.outer");
            let _b = span!("test.lib.inner", 42);
        }
        let spans = registry().spans();
        assert!(spans.iter().any(|(p, s)| p == "test.lib.outer" && s.count >= 1));
        assert!(spans.iter().any(|(p, _)| p == "test.lib.outer/test.lib.inner"));
        let flight = registry().flight();
        assert!(flight
            .iter()
            .any(|e| e.path == "test.lib.outer/test.lib.inner" && e.detail == "42"));
    }
}
