//! The process-wide registry: name → metric maps, span aggregation and the
//! flight recorder.  The maps are locked only on handle creation and on
//! export; metric writes go straight to the shared atomics.

use crate::metrics::{Counter, CounterInner, DurationHistogram, Gauge, GaugeInner, HistogramInner};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Default flight-recorder capacity: the last K completed traces.
const FLIGHT_CAPACITY: usize = 128;

/// Aggregated timing for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Completions recorded under this path.
    pub count: u64,
    /// Total time across completions, in nanoseconds.
    pub total_ns: u64,
    /// The slowest completion, in nanoseconds.
    pub max_ns: u64,
}

/// One completed trace in the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The full span path (`outer/inner`).
    pub path: String,
    /// The detail argument of `span!("name", detail)`, or empty.
    pub detail: String,
    /// Wall time of the span, in nanoseconds.
    pub dur_ns: u64,
    /// Completion time as nanoseconds since the registry was created
    /// (monotonic clock).
    pub at_ns: u64,
}

#[derive(Debug)]
struct Flight {
    capacity: usize,
    ring: VecDeque<TraceEvent>,
}

/// The process-wide telemetry store.  Obtain it via [`registry`]; create
/// standalone instances only in tests.
#[derive(Debug)]
pub struct Registry {
    epoch: Instant,
    counters: Mutex<BTreeMap<String, Arc<CounterInner>>>,
    gauges: Mutex<BTreeMap<String, Arc<GaugeInner>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramInner>>>,
    spans: Mutex<BTreeMap<String, SpanStats>>,
    flight: Mutex<Flight>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry with the default flight capacity.
    pub fn new() -> Self {
        Registry {
            epoch: Instant::now(),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
            flight: Mutex::new(Flight { capacity: FLIGHT_CAPACITY, ring: VecDeque::new() }),
        }
    }

    /// The counter `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("telemetry counter map poisoned");
        Counter::new(Arc::clone(map.entry(name.to_owned()).or_default()))
    }

    /// The gauge `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("telemetry gauge map poisoned");
        Gauge::new(Arc::clone(map.entry(name.to_owned()).or_default()))
    }

    /// The duration histogram `name`, created on first use.
    pub fn histogram(&self, name: &str) -> DurationHistogram {
        let mut map = self.histograms.lock().expect("telemetry histogram map poisoned");
        DurationHistogram::new(Arc::clone(map.entry(name.to_owned()).or_default()))
    }

    /// The current total of counter `name`, or 0 if it was never touched.
    pub fn counter_value(&self, name: &str) -> u64 {
        let map = self.counters.lock().expect("telemetry counter map poisoned");
        map.get(name).map(|c| Counter::new(Arc::clone(c)).value()).unwrap_or(0)
    }

    /// The `(value, high_water)` of gauge `name`, or `(0, 0)` if absent.
    pub fn gauge_value(&self, name: &str) -> (u64, u64) {
        let map = self.gauges.lock().expect("telemetry gauge map poisoned");
        map.get(name).map(|g| g.snapshot()).unwrap_or((0, 0))
    }

    /// Every span path with its aggregated stats, sorted by path.
    pub fn spans(&self) -> Vec<(String, SpanStats)> {
        let map = self.spans.lock().expect("telemetry span map poisoned");
        map.iter().map(|(p, s)| (p.clone(), *s)).collect()
    }

    /// The flight recorder's current contents, oldest first.
    pub fn flight(&self) -> Vec<TraceEvent> {
        let flight = self.flight.lock().expect("telemetry flight recorder poisoned");
        flight.ring.iter().cloned().collect()
    }

    /// Resizes the flight recorder, dropping the oldest entries if shrinking.
    pub fn set_flight_capacity(&self, capacity: usize) {
        let mut flight = self.flight.lock().expect("telemetry flight recorder poisoned");
        flight.capacity = capacity;
        while flight.ring.len() > capacity {
            flight.ring.pop_front();
        }
    }

    /// Records one completed span: aggregates under `path` and appends a
    /// [`TraceEvent`] to the flight recorder.
    pub(crate) fn complete_span(&self, path: String, detail: String, dur: Duration) {
        let dur_ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
        {
            let mut spans = self.spans.lock().expect("telemetry span map poisoned");
            let stats = spans.entry(path.clone()).or_default();
            stats.count += 1;
            stats.total_ns = stats.total_ns.saturating_add(dur_ns);
            stats.max_ns = stats.max_ns.max(dur_ns);
        }
        let at_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut flight = self.flight.lock().expect("telemetry flight recorder poisoned");
        if flight.capacity == 0 {
            return;
        }
        while flight.ring.len() >= flight.capacity {
            flight.ring.pop_front();
        }
        flight.ring.push_back(TraceEvent { path, detail, dur_ns, at_ns });
    }

    /// Zeroes every metric and clears span aggregates and the flight
    /// recorder.  Registered names (and outstanding handles) stay valid.
    pub fn reset(&self) {
        for inner in self.counters.lock().expect("telemetry counter map poisoned").values() {
            inner.reset();
        }
        for inner in self.gauges.lock().expect("telemetry gauge map poisoned").values() {
            inner.reset();
        }
        for inner in self.histograms.lock().expect("telemetry histogram map poisoned").values() {
            inner.reset();
        }
        self.spans.lock().expect("telemetry span map poisoned").clear();
        self.flight.lock().expect("telemetry flight recorder poisoned").ring.clear();
    }

    pub(crate) fn counters_snapshot(&self) -> Vec<(String, u64)> {
        let map = self.counters.lock().expect("telemetry counter map poisoned");
        map.iter().map(|(n, c)| (n.clone(), Counter::new(Arc::clone(c)).value())).collect()
    }

    pub(crate) fn gauges_snapshot(&self) -> Vec<(String, u64, u64)> {
        let map = self.gauges.lock().expect("telemetry gauge map poisoned");
        map.iter()
            .map(|(n, g)| {
                let (v, hw) = g.snapshot();
                (n.clone(), v, hw)
            })
            .collect()
    }

    pub(crate) fn histograms_snapshot(
        &self,
    ) -> Vec<(String, u64, u64, u64, [u64; crate::HISTOGRAM_BUCKETS])> {
        let map = self.histograms.lock().expect("telemetry histogram map poisoned");
        map.iter()
            .map(|(n, h)| {
                let handle = DurationHistogram::new(Arc::clone(h));
                (n.clone(), handle.count(), handle.sum_ns(), handle.max_ns(), h.bucket_counts())
            })
            .collect()
    }
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// The global registry every free function and `span!` records into.
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flight_recorder_is_bounded() {
        let r = Registry::new();
        r.set_flight_capacity(3);
        for i in 0..10u32 {
            r.complete_span(format!("p{i}"), String::new(), Duration::from_nanos(1));
        }
        let flight = r.flight();
        let paths: Vec<&str> = flight.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, ["p7", "p8", "p9"]);
    }

    #[test]
    fn reset_clears_values_but_keeps_handles() {
        let _guard = crate::test_lock();
        let r = Registry::new();
        let c = r.counter("x");
        c.add(5);
        r.gauge("g").set(3);
        r.complete_span("s".into(), String::new(), Duration::from_nanos(9));
        r.reset();
        assert_eq!(c.value(), 0);
        assert_eq!(r.gauge_value("g"), (0, 0));
        assert!(r.spans().is_empty());
        assert!(r.flight().is_empty());
        c.add(2);
        assert_eq!(r.counter_value("x"), 2);
    }
}
