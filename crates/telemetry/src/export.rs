//! Export: the hand-rolled `RTR_TELEMETRY_JSON` artifact and the
//! human-readable span-tree report.  Both iterate sorted snapshots so output
//! is deterministic for a given registry state.

use crate::metrics::bucket_floor_ns;
use crate::registry::Registry;
use std::fmt::Write as _;

/// Escapes `s` for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats `ns` as a human-readable duration (`412ns`, `3.2µs`, `1.48s`).
fn human_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

impl Registry {
    /// Serializes the registry as the `RTR_TELEMETRY_JSON` artifact:
    ///
    /// ```json
    /// {
    ///   "counters": { "<name>": <u64>, ... },
    ///   "gauges": { "<name>": { "value": <u64>, "high_water": <u64> }, ... },
    ///   "histograms": {
    ///     "<name>": { "count": <u64>, "sum_ns": <u64>, "max_ns": <u64>,
    ///                  "buckets": [[<floor_ns>, <count>], ...] }, ...
    ///   },
    ///   "spans": [ { "path": "<a/b>", "count": <u64>,
    ///                "total_ns": <u64>, "max_ns": <u64> }, ... ],
    ///   "flight": [ { "path": "<a/b>", "detail": "<str>",
    ///                 "dur_ns": <u64>, "at_ns": <u64> }, ... ]
    /// }
    /// ```
    ///
    /// Histogram `buckets` lists only non-empty log₂-ns buckets as
    /// `[inclusive floor in ns, count]` pairs.  Maps are name-sorted; spans
    /// are path-sorted; flight events are oldest-first.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let counters = self.counters_snapshot();
        for (i, (name, value)) in counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {}", escape(name), value);
        }
        out.push_str(if counters.is_empty() { "},\n" } else { "\n  },\n" });

        out.push_str("  \"gauges\": {");
        let gauges = self.gauges_snapshot();
        for (i, (name, value, high)) in gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{ \"value\": {}, \"high_water\": {} }}",
                escape(name),
                value,
                high
            );
        }
        out.push_str(if gauges.is_empty() { "},\n" } else { "\n  },\n" });

        out.push_str("  \"histograms\": {");
        let histograms = self.histograms_snapshot();
        for (i, (name, count, sum_ns, max_ns, buckets)) in histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let cells: Vec<String> = buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(b, &c)| format!("[{}, {}]", bucket_floor_ns(b), c))
                .collect();
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{ \"count\": {}, \"sum_ns\": {}, \"max_ns\": {}, \
                 \"buckets\": [{}] }}",
                escape(name),
                count,
                sum_ns,
                max_ns,
                cells.join(", ")
            );
        }
        out.push_str(if histograms.is_empty() { "},\n" } else { "\n  },\n" });

        out.push_str("  \"spans\": [");
        let spans = self.spans();
        for (i, (path, stats)) in spans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{ \"path\": \"{}\", \"count\": {}, \"total_ns\": {}, \
                 \"max_ns\": {} }}",
                escape(path),
                stats.count,
                stats.total_ns,
                stats.max_ns
            );
        }
        out.push_str(if spans.is_empty() { "],\n" } else { "\n  ],\n" });

        out.push_str("  \"flight\": [");
        let flight = self.flight();
        for (i, event) in flight.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{ \"path\": \"{}\", \"detail\": \"{}\", \"dur_ns\": {}, \
                 \"at_ns\": {} }}",
                escape(&event.path),
                escape(&event.detail),
                event.dur_ns,
                event.at_ns
            );
        }
        out.push_str(if flight.is_empty() { "]\n}\n" } else { "\n  ]\n}\n" });
        out
    }

    /// Renders the aggregated spans as an indented tree, one line per path,
    /// children nested under their parents:
    ///
    /// ```text
    /// span tree (count · total · mean · max)
    ///   build.sparse_suite               1    5.31s    5.31s    5.31s
    ///     build.shared_sweep             1    3.10s    3.10s    3.10s
    /// ```
    pub fn span_report(&self) -> String {
        let mut spans = self.spans();
        // Component-wise sort keeps a parent immediately above its subtree
        // even when sibling names share prefixes.
        spans.sort_by(|(a, _), (b, _)| {
            a.split('/').collect::<Vec<_>>().cmp(&b.split('/').collect::<Vec<_>>())
        });
        let mut out = String::from("span tree (count · total · mean · max)\n");
        if spans.is_empty() {
            out.push_str("  (no spans recorded)\n");
            return out;
        }
        let width = spans
            .iter()
            .map(|(p, _)| {
                let depth = p.matches('/').count();
                2 * depth + p.rsplit('/').next().unwrap_or(p).len()
            })
            .max()
            .unwrap_or(0)
            .max(20);
        for (path, stats) in &spans {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let mean = stats.total_ns.checked_div(stats.count).unwrap_or(0);
            let _ = writeln!(
                out,
                "  {:indent$}{:<width$} {:>6} {:>9} {:>9} {:>9}",
                "",
                name,
                stats.count,
                human_ns(stats.total_ns),
                human_ns(mean),
                human_ns(stats.max_ns),
                indent = 2 * depth,
                width = width - 2 * depth,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn json_has_all_sections_and_escapes() {
        let _guard = crate::test_lock();
        let r = Registry::new();
        r.counter("a\"b").add(2);
        r.gauge("g").set(5);
        r.histogram("h").observe(Duration::from_nanos(100));
        r.complete_span("x/y".into(), "d".into(), Duration::from_nanos(50));
        let json = r.to_json();
        for section in ["\"counters\"", "\"gauges\"", "\"histograms\"", "\"spans\"", "\"flight\""] {
            assert!(json.contains(section), "missing {section} in {json}");
        }
        assert!(json.contains("a\\\"b"));
        assert!(json.contains("\"high_water\": 5"));
        assert!(json.contains("[64, 1]"), "100ns lands in the [64,128) bucket: {json}");
    }

    #[test]
    fn span_report_indents_children() {
        let r = Registry::new();
        r.complete_span("build".into(), String::new(), Duration::from_millis(5));
        r.complete_span("build/sweep".into(), String::new(), Duration::from_millis(3));
        let report = r.span_report();
        let lines: Vec<&str> = report.lines().collect();
        assert!(lines[1].starts_with("  build"));
        assert!(lines[2].starts_with("    sweep"));
    }
}
